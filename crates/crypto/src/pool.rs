//! A parallel signature-verification pool.
//!
//! BFT-SMaRt pushes client-signature checks into a pool of worker threads so
//! multi-core servers verify in parallel instead of inside the (sequential)
//! state machine — the paper's Table I shows this alone more than doubles
//! SMaRtCoin's throughput. This module provides the same facility for real
//! (wall-clock) deployments; the discrete-event simulator models the pool's
//! *virtual-time* behaviour separately in `smartchain-sim`.

use crate::keys::{PublicKey, Signature};
use crossbeam::channel;
use std::thread::JoinHandle;

/// One verification job.
struct Job {
    index: usize,
    public: PublicKey,
    msg: Vec<u8>,
    sig: Signature,
}

/// A fixed-size pool of verification workers.
///
/// # Examples
///
/// ```
/// use smartchain_crypto::keys::{Backend, SecretKey};
/// use smartchain_crypto::pool::VerifyPool;
///
/// let pool = VerifyPool::new(4);
/// let sk = SecretKey::from_seed(Backend::Sim, &[1u8; 32]);
/// let batch: Vec<_> = (0..16u8)
///     .map(|i| (sk.public_key(), vec![i], sk.sign(&[i])))
///     .collect();
/// let results = pool.verify_batch(&batch);
/// assert!(results.iter().all(|&ok| ok));
/// ```
pub struct VerifyPool {
    senders: channel::Sender<Job>,
    results_rx: channel::Receiver<(usize, bool)>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl VerifyPool {
    /// Spawns a pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> VerifyPool {
        assert!(workers > 0, "pool needs at least one worker");
        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let (res_tx, res_rx) = channel::unbounded::<(usize, bool)>();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = job_rx.clone();
            let tx = res_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let ok = job.public.verify(&job.msg, &job.sig);
                    if tx.send((job.index, ok)).is_err() {
                        break;
                    }
                }
            }));
        }
        VerifyPool { senders: job_tx, results_rx: res_rx, workers: handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Verifies a batch in parallel, returning per-item results in order.
    pub fn verify_batch(&self, batch: &[(PublicKey, Vec<u8>, Signature)]) -> Vec<bool> {
        let n = batch.len();
        for (index, (public, msg, sig)) in batch.iter().enumerate() {
            self.senders
                .send(Job { index, public: *public, msg: msg.clone(), sig: *sig })
                .expect("workers alive while pool exists");
        }
        let mut results = vec![false; n];
        for _ in 0..n {
            let (index, ok) = self
                .results_rx
                .recv()
                .expect("workers alive while pool exists");
            results[index] = ok;
        }
        results
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers.
        let (empty_tx, _) = channel::unbounded();
        self.senders = empty_tx;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Verifies a batch sequentially — the baseline the pool is compared against.
pub fn verify_batch_sequential(batch: &[(PublicKey, Vec<u8>, Signature)]) -> Vec<bool> {
    batch
        .iter()
        .map(|(public, msg, sig)| public.verify(msg, sig))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{Backend, SecretKey};

    fn batch(n: usize) -> Vec<(PublicKey, Vec<u8>, Signature)> {
        let sk = SecretKey::from_seed(Backend::Sim, &[11u8; 32]);
        (0..n)
            .map(|i| {
                let msg = format!("tx-{i}").into_bytes();
                let sig = sk.sign(&msg);
                (sk.public_key(), msg, sig)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let b = batch(64);
        let pool = VerifyPool::new(4);
        assert_eq!(pool.verify_batch(&b), verify_batch_sequential(&b));
    }

    #[test]
    fn detects_bad_signatures_at_right_positions() {
        let mut b = batch(16);
        // Corrupt entries 3 and 11 by swapping their messages.
        let m3 = b[3].1.clone();
        b[3].1 = b[11].1.clone();
        b[11].1 = m3;
        let pool = VerifyPool::new(3);
        let results = pool.verify_batch(&b);
        for (i, ok) in results.iter().enumerate() {
            assert_eq!(*ok, i != 3 && i != 11, "index {i}");
        }
    }

    #[test]
    fn empty_batch() {
        let pool = VerifyPool::new(2);
        assert!(pool.verify_batch(&[]).is_empty());
    }

    #[test]
    fn pool_reusable_across_batches() {
        let pool = VerifyPool::new(2);
        for _ in 0..3 {
            let b = batch(8);
            assert!(pool.verify_batch(&b).iter().all(|&ok| ok));
        }
    }
}
