//! Property-based tests of the cryptographic substrate: algebraic laws of
//! the Ed25519 field/scalar arithmetic, group laws on the curve, signature
//! round-trips across backends, and Merkle proof soundness.
//!
//! Randomized inputs come from a seeded splitmix64 generator, so every run
//! exercises the same cases (the workspace carries no external test deps).

use smartchain_crypto::ed25519::field::Fe;
use smartchain_crypto::ed25519::point::Point;
use smartchain_crypto::ed25519::scalar::Scalar;
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_crypto::sha256;
use smartchain_merkle as merkle;

use smartchain_sim::rng::SimRng;

/// Seeded generator helpers over the simulator's RNG (no external crates).
struct Gen(SimRng);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(SimRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn array32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.0.fill_bytes(&mut out);
        out
    }

    fn bytes(&mut self, min: usize, max: usize) -> Vec<u8> {
        let len = min + self.0.gen_range((max - min + 1) as u64) as usize;
        self.0.gen_bytes(len)
    }

    fn fe(&mut self) -> Fe {
        let mut b = self.array32();
        b[31] &= 0x7f;
        Fe::from_bytes(&b)
    }

    fn scalar(&mut self) -> Scalar {
        Scalar::from_bytes_mod_order(&self.array32())
    }
}

const CASES: usize = 64;

#[test]
fn fe_add_commutes() {
    let mut g = Gen::new(0xf1);
    for _ in 0..CASES {
        let (a, b) = (g.fe(), g.fe());
        assert!(a.add(b).ct_eq(b.add(a)));
    }
}

#[test]
fn fe_mul_commutes_and_associates() {
    let mut g = Gen::new(0xf2);
    for _ in 0..CASES {
        let (a, b, c) = (g.fe(), g.fe(), g.fe());
        assert!(a.mul(b).ct_eq(b.mul(a)));
        assert!(a.mul(b).mul(c).ct_eq(a.mul(b.mul(c))));
    }
}

#[test]
fn fe_distributes() {
    let mut g = Gen::new(0xf3);
    for _ in 0..CASES {
        let (a, b, c) = (g.fe(), g.fe(), g.fe());
        assert!(a.mul(b.add(c)).ct_eq(a.mul(b).add(a.mul(c))));
    }
}

#[test]
fn fe_sub_is_add_neg() {
    let mut g = Gen::new(0xf4);
    for _ in 0..CASES {
        let (a, b) = (g.fe(), g.fe());
        assert!(a.sub(b).ct_eq(a.add(b.neg())));
    }
}

#[test]
fn fe_inverse_law() {
    let mut g = Gen::new(0xf5);
    for _ in 0..CASES {
        let a = g.fe();
        if a.is_zero() {
            continue;
        }
        assert!(a.mul(a.invert()).ct_eq(Fe::ONE));
    }
}

#[test]
fn fe_canonical_roundtrip() {
    let mut g = Gen::new(0xf6);
    for _ in 0..CASES {
        let canon = g.fe().to_bytes();
        assert_eq!(Fe::from_bytes(&canon).to_bytes(), canon);
    }
}

#[test]
fn scalar_ring_laws() {
    let mut g = Gen::new(0xf7);
    for _ in 0..CASES {
        let (a, b, c) = (g.scalar(), g.scalar(), g.scalar());
        assert_eq!(a.add(b), b.add(a));
        assert_eq!(a.mul(b), b.mul(a));
        assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }
}

#[test]
fn scalar_bytes_roundtrip() {
    let mut g = Gen::new(0xf8);
    for _ in 0..CASES {
        let a = g.scalar();
        assert_eq!(Scalar::from_bytes_mod_order(&a.to_bytes()), a);
    }
}

#[test]
fn point_scalar_homomorphism() {
    let mut g = Gen::new(0xf9);
    let base = Point::basepoint();
    for _ in 0..16 {
        // [a]B + [b]B == [a+b]B
        let a = g.next_u64() % 1000;
        let b = g.next_u64() % 1000;
        let left = base
            .mul(&Scalar::from_u64(a))
            .add(&base.mul(&Scalar::from_u64(b)));
        let right = base.mul(&Scalar::from_u64(a + b));
        assert!(left.eq_point(&right));
    }
}

#[test]
fn point_compress_roundtrip() {
    let mut g = Gen::new(0xfa);
    for _ in 0..16 {
        let k = 1 + g.next_u64() % 5000;
        let p = Point::basepoint().mul(&Scalar::from_u64(k));
        let enc = p.compress();
        let q = Point::decompress(&enc).expect("valid encoding");
        assert!(p.eq_point(&q));
        assert_eq!(q.compress(), enc);
    }
}

#[test]
fn signatures_roundtrip_any_message() {
    let mut g = Gen::new(0xfb);
    for _ in 0..8 {
        let msg = g.bytes(0, 200);
        let seed = g.array32();
        for backend in [Backend::Ed25519, Backend::Sim] {
            let sk = SecretKey::from_seed(backend, &seed);
            let sig = sk.sign(&msg);
            assert!(sk.public_key().verify(&msg, &sig));
        }
    }
}

#[test]
fn tampered_messages_never_verify() {
    let mut g = Gen::new(0xfc);
    let sk = SecretKey::from_seed(Backend::Ed25519, &[5u8; 32]);
    for _ in 0..8 {
        let msg = g.bytes(1, 100);
        let sig = sk.sign(&msg);
        let mut tampered = msg.clone();
        let idx = (g.next_u64() as usize) % tampered.len();
        tampered[idx] ^= 0x01;
        assert!(!sk.public_key().verify(&tampered, &sig));
    }
}

#[test]
fn merkle_proofs_sound() {
    let mut g = Gen::new(0xfd);
    for _ in 0..CASES {
        let n = 1 + (g.next_u64() as usize) % 23;
        let leaves: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(0, 40)).collect();
        let root = merkle::root(&leaves);
        let index = (g.next_u64() as usize) % leaves.len();
        let proof = merkle::prove(&leaves, index);
        assert!(merkle::verify(&root, &leaves[index], &proof));
        // A proof never validates different content.
        let mut other = leaves[index].clone();
        other.push(0xff);
        assert!(!merkle::verify(&root, &other, &proof));
    }
}

#[test]
fn sha256_incremental_equals_oneshot() {
    let mut g = Gen::new(0xfe);
    for _ in 0..CASES {
        let chunk_count = (g.next_u64() as usize) % 8;
        let chunks: Vec<Vec<u8>> = (0..chunk_count).map(|_| g.bytes(0, 200)).collect();
        let mut hasher = sha256::Sha256::new();
        let mut all = Vec::new();
        for c in &chunks {
            hasher.update(c);
            all.extend_from_slice(c);
        }
        assert_eq!(hasher.finalize(), sha256::digest(&all));
    }
}
