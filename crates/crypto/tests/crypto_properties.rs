//! Property-based tests of the cryptographic substrate: algebraic laws of
//! the Ed25519 field/scalar arithmetic, group laws on the curve, signature
//! round-trips across backends, and Merkle proof soundness.

use proptest::prelude::*;
use smartchain_crypto::ed25519::field::Fe;
use smartchain_crypto::ed25519::point::Point;
use smartchain_crypto::ed25519::scalar::Scalar;
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_crypto::{merkle, sha256};

fn arb_fe() -> impl Strategy<Value = Fe> {
    any::<[u8; 32]>().prop_map(|mut b| {
        b[31] &= 0x7f;
        Fe::from_bytes(&b)
    })
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| Scalar::from_bytes_mod_order(&b))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fe_add_commutes(a in arb_fe(), b in arb_fe()) {
        prop_assert!(a.add(b).ct_eq(b.add(a)));
    }

    #[test]
    fn fe_mul_commutes_and_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert!(a.mul(b).ct_eq(b.mul(a)));
        prop_assert!(a.mul(b).mul(c).ct_eq(a.mul(b.mul(c))));
    }

    #[test]
    fn fe_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert!(a.mul(b.add(c)).ct_eq(a.mul(b).add(a.mul(c))));
    }

    #[test]
    fn fe_sub_is_add_neg(a in arb_fe(), b in arb_fe()) {
        prop_assert!(a.sub(b).ct_eq(a.add(b.neg())));
    }

    #[test]
    fn fe_inverse_law(a in arb_fe()) {
        prop_assume!(!a.is_zero());
        prop_assert!(a.mul(a.invert()).ct_eq(Fe::ONE));
    }

    #[test]
    fn fe_canonical_roundtrip(a in arb_fe()) {
        let canon = a.to_bytes();
        prop_assert_eq!(Fe::from_bytes(&canon).to_bytes(), canon);
    }

    #[test]
    fn scalar_ring_laws(a in arb_scalar(), b in arb_scalar(), c in arb_scalar()) {
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn scalar_bytes_roundtrip(a in arb_scalar()) {
        prop_assert_eq!(Scalar::from_bytes_mod_order(&a.to_bytes()), a);
    }

    #[test]
    fn point_scalar_homomorphism(a in 0u64..1000, b in 0u64..1000) {
        // [a]B + [b]B == [a+b]B
        let base = Point::basepoint();
        let left = base.mul(&Scalar::from_u64(a)).add(&base.mul(&Scalar::from_u64(b)));
        let right = base.mul(&Scalar::from_u64(a + b));
        prop_assert!(left.eq_point(&right));
    }

    #[test]
    fn point_compress_roundtrip(k in 1u64..5000) {
        let p = Point::basepoint().mul(&Scalar::from_u64(k));
        let enc = p.compress();
        let q = Point::decompress(&enc).expect("valid encoding");
        prop_assert!(p.eq_point(&q));
        prop_assert_eq!(q.compress(), enc);
    }

    #[test]
    fn signatures_roundtrip_any_message(msg: Vec<u8>, seed: [u8; 32]) {
        for backend in [Backend::Ed25519, Backend::Sim] {
            let sk = SecretKey::from_seed(backend, &seed);
            let sig = sk.sign(&msg);
            prop_assert!(sk.public_key().verify(&msg, &sig));
        }
    }

    #[test]
    fn tampered_messages_never_verify(msg in proptest::collection::vec(any::<u8>(), 1..100), flip in 0usize..100) {
        let sk = SecretKey::from_seed(Backend::Ed25519, &[5u8; 32]);
        let sig = sk.sign(&msg);
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(!sk.public_key().verify(&tampered, &sig));
    }

    #[test]
    fn merkle_proofs_sound(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 1..24), pick: prop::sample::Index) {
        let root = merkle::root(&leaves);
        let index = pick.index(leaves.len());
        let proof = merkle::prove(&leaves, index);
        prop_assert!(merkle::verify(&root, &leaves[index], &proof));
        // A proof never validates different content.
        let mut other = leaves[index].clone();
        other.push(0xff);
        prop_assert!(!merkle::verify(&root, &other, &proof));
    }

    #[test]
    fn sha256_incremental_equals_oneshot(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..8)) {
        let mut hasher = sha256::Sha256::new();
        let mut all = Vec::new();
        for c in &chunks {
            hasher.update(c);
            all.extend_from_slice(c);
        }
        prop_assert_eq!(hasher.finalize(), sha256::digest(&all));
    }
}
