//! The TCP deployment, end to end over real loopback sockets: signed
//! requests, torn connections, spoofed frames, and a replica that is killed
//! and rejoins via runtime state transfer.
//!
//! These tests are wall-clock (CI runs them in the workspace-test job) and
//! are budgeted to stay well under 30 s combined.

use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_smr::app::CounterApp;
use smartchain_smr::ordering::SmrMsg;
use smartchain_smr::runtime::{RuntimeConfig, TcpCluster};
use smartchain_smr::transport::frame::{
    read_frame, write_client_hello, write_frame, write_peer_hello, FrameKey,
};
use smartchain_smr::types::Request;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smartchain-tcp-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str) -> RuntimeConfig {
    RuntimeConfig {
        storage_dir: Some(fresh_dir(tag)),
        progress_timeout: Duration::from_millis(200),
        ..RuntimeConfig::default()
    }
}

fn sum_of(reply: &[u8]) -> u64 {
    u64::from_le_bytes(reply[..8].try_into().expect("8-byte sum"))
}

/// Signed and unsigned client requests complete over real sockets, and a
/// forged signature dies in the verify stage — exactly the channel-backend
/// semantics, now on TCP.
#[test]
fn signed_requests_complete_end_to_end() {
    let mut cluster = TcpCluster::start(config("signed"), Backend::Sim, CounterApp::new)
        .expect("boot tcp cluster");
    let r = cluster
        .execute(vec![5], Duration::from_secs(15))
        .expect("unsigned op");
    assert_eq!(sum_of(&r), 5);
    let sk = SecretKey::from_seed(Backend::Sim, &[77u8; 32]);
    let client = 0xC11E28; // the built-in client id: replies route back
    let payload = vec![7u8];
    let sig = sk.sign(&Request::sign_payload(client, 2, &payload));
    let r = cluster
        .execute_request(
            Request {
                client,
                seq: 2,
                payload,
                signature: Some((sk.public_key(), sig)),
            },
            Duration::from_secs(15),
        )
        .expect("signed op");
    assert_eq!(sum_of(&r), 12);
    // Forged signature: no replica orders it, no quorum forms.
    let bad = sk.sign(b"not this request");
    let err = cluster.execute_request(
        Request {
            client,
            seq: 3,
            payload: vec![100u8],
            signature: Some((sk.public_key(), bad)),
        },
        Duration::from_millis(900),
    );
    assert!(err.is_err(), "forged request must not execute");
    cluster.shutdown();
}

/// Kill one replica: the cluster keeps committing. Restart it on its old
/// port and storage: it recovers its durable prefix, fetches the missed
/// suffix via runtime state transfer, and participates again — proven by
/// killing a *second* replica afterwards, which leaves a quorum only if the
/// first one truly rejoined.
#[test]
fn survives_kill_and_rejoin_via_state_transfer() {
    let mut cluster = TcpCluster::start(config("rejoin"), Backend::Sim, CounterApp::new)
        .expect("boot tcp cluster");
    let mut expected = 0u64;
    for add in [1u8, 2] {
        expected += add as u64;
        let r = cluster
            .execute(vec![add], Duration::from_secs(15))
            .expect("warm-up op");
        assert_eq!(sum_of(&r), expected);
    }
    // Replica 3 dies (its listener, links and thread all go away).
    cluster.kill_replica(3);
    for add in [3u8, 4, 5] {
        expected += add as u64;
        let r = cluster
            .execute(vec![add], Duration::from_secs(15))
            .expect("op with one replica down");
        assert_eq!(sum_of(&r), expected);
    }
    // Replica 3 comes back on the same address and disk: local recovery,
    // then state transfer for the batches it missed.
    cluster.restart_replica(3).expect("rebind and restart");
    expected += 6;
    let r = cluster
        .execute(vec![6], Duration::from_secs(15))
        .expect("op after rejoin");
    assert_eq!(sum_of(&r), expected);
    // The acid test: with replica 2 dead, progress now *requires* the
    // rejoined replica 3 to vote (2f+1 = 3 of {0, 1, 3}).
    cluster.kill_replica(2);
    expected += 7;
    let r = cluster
        .execute(vec![7], Duration::from_secs(30))
        .expect("op that needs the rejoined replica");
    assert_eq!(sum_of(&r), expected);
    cluster.shutdown();
}

/// The leader is killed mid-stream and later rejoins: the survivors elect a
/// new leader over TCP (STOP/STOPDATA/SYNC on real sockets, with
/// PeerUp-triggered resends repairing anything a torn link ate), and the
/// restarted ex-leader re-integrates through the next regency.
#[test]
fn leader_crash_and_rejoin_mid_view_change() {
    let mut cluster = TcpCluster::start(config("leader"), Backend::Sim, CounterApp::new)
        .expect("boot tcp cluster");
    let r = cluster
        .execute(vec![1], Duration::from_secs(15))
        .expect("warm-up");
    assert_eq!(sum_of(&r), 1);
    // Kill the regency-0 leader; the next op forces a view change.
    cluster.kill_replica(0);
    let r = cluster
        .execute(vec![2], Duration::from_secs(30))
        .expect("op across the leader change");
    assert_eq!(sum_of(&r), 3);
    // The ex-leader returns, behind on both batches and regency.
    cluster.restart_replica(0).expect("restart ex-leader");
    let r = cluster
        .execute(vec![3], Duration::from_secs(15))
        .expect("op after ex-leader rejoin");
    assert_eq!(sum_of(&r), 6);
    // Progress must now survive losing another replica, which requires the
    // rejoined ex-leader to have caught up (quorum = 3 of {0, 1, 2}).
    cluster.kill_replica(3);
    let r = cluster
        .execute(vec![4], Duration::from_secs(30))
        .expect("op that needs the rejoined ex-leader");
    assert_eq!(sum_of(&r), 10);
    cluster.shutdown();
}

/// Kill-and-restart against a *truncated* segmented log: with a small
/// checkpoint period the replicas' durable logs have had their prefixes
/// compacted away by the time replica 3 is killed. Its restart must recover
/// snapshot + post-checkpoint suffix from its own segmented store (replaying
/// only records above the checkpoint), fetch the missed tail via the
/// digest-checked runtime state transfer, and vote again.
#[test]
fn kill_restart_recovers_from_truncated_segmented_log() {
    let dir = fresh_dir("truncated");
    let config = RuntimeConfig {
        storage_dir: Some(dir.clone()),
        checkpoint_period: 3,
        ..config("truncated")
    };
    let mut cluster =
        TcpCluster::start(config, Backend::Sim, CounterApp::new).expect("boot tcp cluster");
    let mut expected = 0u64;
    // 7 ops → checkpoints at 3 and 6 truncate batches 1..6 on every replica.
    for add in 1u8..=7 {
        expected += add as u64;
        let r = cluster
            .execute(vec![add], Duration::from_secs(15))
            .expect("warm-up op");
        assert_eq!(sum_of(&r), expected);
    }
    cluster.kill_replica(3);
    // The dead replica's on-disk log really is truncated: reopen it directly.
    {
        use smartchain_storage::{RecordLog, SegmentConfig, SegmentedLog, SyncPolicy};
        let log = SegmentedLog::open(
            dir.join("replica-3").join("segments"),
            SyncPolicy::Async,
            SegmentConfig::default(),
        )
        .expect("reopen replica 3's segmented log");
        assert!(
            log.first_index() >= 6,
            "checkpoints must have truncated the log prefix (first index {})",
            log.first_index()
        );
        assert_eq!(log.read(0).expect("read"), None, "old records are gone");
    }
    for add in [8u8, 9] {
        expected += add as u64;
        let r = cluster
            .execute(vec![add], Duration::from_secs(15))
            .expect("op with one replica down");
        assert_eq!(sum_of(&r), expected);
    }
    cluster.restart_replica(3).expect("rebind and restart");
    expected += 10;
    let r = cluster
        .execute(vec![10], Duration::from_secs(15))
        .expect("op after rejoin");
    assert_eq!(sum_of(&r), expected);
    // Progress now requires the restarted replica's vote (3 of {0, 1, 3}).
    cluster.kill_replica(2);
    expected += 11;
    let r = cluster
        .execute(vec![11], Duration::from_secs(30))
        .expect("op that needs the rejoined replica");
    assert_eq!(sum_of(&r), expected);
    cluster.shutdown();
}

/// With `require_signed`, an unsigned request — which any network peer
/// could forge, stamping a victim's `(client, seq)` — dies in the verify
/// stage, while properly signed traffic flows.
#[test]
fn require_signed_rejects_unsigned_requests() {
    let config = RuntimeConfig {
        require_signed: true,
        ..config("reqsig")
    };
    let mut cluster =
        TcpCluster::start(config, Backend::Sim, CounterApp::new).expect("boot tcp cluster");
    // An unsigned op never forms a quorum.
    let err = cluster.execute(vec![9], Duration::from_millis(900));
    assert!(err.is_err(), "unsigned request must be rejected");
    // A signed one for the same client completes — and, crucially, the
    // rejected unsigned request did not poison the dedup frontier.
    let sk = SecretKey::from_seed(Backend::Sim, &[55u8; 32]);
    let client = 0xC11E28;
    let payload = vec![3u8];
    let sig = sk.sign(&Request::sign_payload(client, 2, &payload));
    let r = cluster
        .execute_request(
            Request {
                client,
                seq: 2,
                payload,
                signature: Some((sk.public_key(), sig)),
            },
            Duration::from_secs(15),
        )
        .expect("signed op on a require_signed cluster");
    assert_eq!(sum_of(&r), 3);
    cluster.shutdown();
}

/// An attacker without the cluster secret cannot impersonate a replica: the
/// spoofed session handshake is rejected at the HMAC check, and the cluster
/// keeps working untouched.
#[test]
fn spoofed_peer_frames_rejected() {
    let mut cluster = TcpCluster::start(config("spoof"), Backend::Sim, CounterApp::new)
        .expect("boot tcp cluster");
    let victim_addr = cluster.cluster_config().replicas[0].clone();
    // Handshake MAC'd under the wrong secret, claiming to be replica 2.
    {
        let mut stream = TcpStream::connect(&victim_addr).expect("dial victim");
        write_peer_hello(&mut stream, &[0xEE; 32], 2, 0, 0).expect("send spoofed hello");
        // Follow with a frame that would be a consensus message if accepted.
        let msg = SmrMsg::Request(Request {
            client: 1,
            seq: 1,
            payload: vec![9],
            signature: None,
        });
        let _ = write_frame(
            &mut stream,
            &FrameKey::link(&[0xEE; 32], 2, 0),
            &smartchain_codec::to_bytes(&msg),
        );
    }
    // Raw garbage on a fresh connection is equally dropped.
    {
        let mut stream = TcpStream::connect(&victim_addr).expect("dial victim");
        let _ = stream.write_all(b"\xff\xff\xff\xff garbage that is not a frame");
    }
    let r = cluster
        .execute(vec![4], Duration::from_secs(15))
        .expect("cluster unaffected by spoofed frames");
    assert_eq!(sum_of(&r), 4);
    cluster.shutdown();
}

/// A client whose frames arrive in torn pieces (handshake split mid-header,
/// request split byte-ranges apart) is still served: the readers reassemble
/// frames from arbitrary TCP segmentation.
#[test]
fn partial_frame_delivery_is_reassembled() {
    let mut cluster = TcpCluster::start(config("partial"), Backend::Sim, CounterApp::new)
        .expect("boot tcp cluster");
    // Warm the cluster up through the normal path.
    cluster
        .execute(vec![1], Duration::from_secs(15))
        .expect("warm-up");
    let addrs = cluster.cluster_config().replicas.clone();
    let client_id = 0xD1717u64;
    // Hand-roll the client: connect to every replica, send hello + request
    // in deliberately torn chunks.
    let mut hello = Vec::new();
    write_client_hello(&mut hello, client_id).expect("encode hello");
    let request = SmrMsg::Request(Request {
        client: client_id,
        seq: 1,
        payload: vec![5],
        signature: None,
    });
    let mut frame = Vec::new();
    write_frame(
        &mut frame,
        &FrameKey::client(),
        &smartchain_codec::to_bytes(&request),
    )
    .expect("encode frame");
    // Phase 1: register the client at every replica first (hellos torn
    // mid-header) — consensus spreads the request cluster-wide the moment
    // the leader sees it, and replies only route over registered
    // connections.
    let mut streams = Vec::new();
    for addr in &addrs {
        let mut stream = TcpStream::connect(addr).expect("dial replica");
        let (head, tail) = hello.split_at(3);
        stream.write_all(head).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        stream.write_all(tail).unwrap();
        streams.push(stream);
    }
    // Phase 2: the request itself, a few bytes at a time.
    for stream in &mut streams {
        for chunk in frame.chunks(7) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    // f+1 matching replies prove the torn request was ordered and executed.
    let mut matching = 0;
    for mut stream in streams {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        if let Ok(payload) = read_frame(&mut stream, &FrameKey::client()) {
            if let Ok(SmrMsg::Reply(reply)) = smartchain_codec::from_bytes::<SmrMsg>(&payload) {
                assert_eq!(reply.client, client_id);
                assert_eq!(reply.seq, 1);
                assert_eq!(sum_of(&reply.result), 5);
                matching += 1;
            }
        }
    }
    assert!(matching >= 2, "need f+1 replies, got {matching}");
    cluster.shutdown();
}
