//! Reactor-specific transport behavior over real loopback sockets: bounded
//! outbox overflow surfacing as repair, the client admission cap, slow-client
//! isolation, and the per-connection counters. The protocol-level TCP suite
//! lives in `tcp_cluster.rs`; these tests exercise the transport alone.

use smartchain_crypto::keys::Backend;
use smartchain_smr::app::CounterApp;
use smartchain_smr::ordering::SmrMsg;
use smartchain_smr::runtime::{RuntimeConfig, TcpCluster};
use smartchain_smr::transport::frame::{read_hello, write_client_hello, write_frame, FrameKey};
use smartchain_smr::transport::{NetEvent, TcpConfig, TcpTransport, Transport};
use smartchain_smr::types::Request;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const SECRET: [u8; 32] = [0x5A; 32];

fn big_request(seq: u64, len: usize) -> SmrMsg {
    SmrMsg::Request(Request {
        client: 7,
        seq,
        payload: vec![0xAB; len],
        signature: None,
    })
}

/// Drives the reactor until `want` matches an event or the deadline passes.
fn drive_until(
    transport: &mut TcpTransport,
    deadline: Duration,
    mut want: impl FnMut(&NetEvent) -> bool,
) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if let Ok(event) = transport.recv_timeout(Duration::from_millis(20)) {
            if want(&event) {
                return true;
            }
        }
    }
    false
}

/// Overflowing a peer's bounded outbox is counted, never silent, and once
/// the backlog drains the reactor emits a synthetic `PeerUp` so the
/// ordering layer re-sends what the drops may have lost.
#[test]
fn outbox_overflow_is_counted_and_repaired() {
    // The test plays replica 1: it accepts replica 0's out-link and stops
    // reading, so frames pile up in the kernel buffer and then the outbox.
    let peer_listener = TcpListener::bind("127.0.0.1:0").expect("bind peer");
    let peer_addr = peer_listener.local_addr().unwrap().to_string();
    let listener0 = TcpListener::bind("127.0.0.1:0").expect("bind replica 0");
    let addr0 = listener0.local_addr().unwrap().to_string();
    let mut config = TcpConfig::new(0, vec![addr0, peer_addr], SECRET);
    config.outbox = 4;
    let mut transport = TcpTransport::from_listener(config, listener0).expect("transport");
    let stats = transport.stats_handle();

    // Demand-dial: the first send starts the connect.
    transport.send(1, big_request(1, 1024));
    assert!(
        drive_until(&mut transport, Duration::from_secs(5), |e| matches!(
            e,
            NetEvent::PeerUp(1)
        )),
        "out-link must come up"
    );
    let (mut peer_side, _) = peer_listener.accept().expect("accept out-link");
    let hello = read_hello(&mut peer_side, &SECRET, 1).expect("link hello");
    assert!(matches!(
        hello,
        smartchain_smr::transport::frame::Hello::Peer { from: 0, .. }
    ));

    // Flood without the peer reading: 256 KiB frames overrun the socket
    // buffer, then the 4-frame outbox.
    let mut seq = 2u64;
    let overflowed = {
        let end = Instant::now() + Duration::from_secs(10);
        loop {
            if stats.snapshot().queue_full_drops > 0 {
                break true;
            }
            if Instant::now() >= end {
                break false;
            }
            transport.send(1, big_request(seq, 256 * 1024));
            seq += 1;
            let _ = transport.recv_timeout(Duration::from_millis(5));
        }
    };
    assert!(overflowed, "bounded outbox must report drops");

    // The peer starts reading again: the queue drains and the reactor
    // surfaces the loss as a synthetic PeerUp on the same link.
    let drainer = std::thread::spawn(move || {
        let mut sink = [0u8; 64 * 1024];
        peer_side
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        while let Ok(n) = peer_side.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    });
    assert!(
        drive_until(&mut transport, Duration::from_secs(10), |e| matches!(
            e,
            NetEvent::PeerUp(1)
        )),
        "drained overflow must trigger repair"
    );
    drop(transport);
    drainer.join().unwrap();
}

/// Broadcasting to several peers serializes the payload exactly once: the
/// encode counter tracks broadcasts one-to-one (not once per peer), and the
/// shared-buffer frames still authenticate per link — a real peer receives
/// and verifies the message over its own pairwise key.
#[test]
fn broadcast_encodes_payload_once_for_all_peers() {
    // Three replica addresses; the test runs replicas 0 and 1, replica 2 is
    // a bound-but-mute listener so replica 0 genuinely fans out to two
    // distinct links with two distinct tags.
    let listeners: Vec<TcpListener> = (0..3)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect();
    let mut it = listeners.into_iter();
    let mut sender =
        TcpTransport::from_listener(TcpConfig::new(0, addrs.clone(), SECRET), it.next().unwrap())
            .expect("transport 0");
    let mut receiver =
        TcpTransport::from_listener(TcpConfig::new(1, addrs, SECRET), it.next().unwrap())
            .expect("transport 1");
    let stats = sender.stats_handle();

    const ROUNDS: u64 = 5;
    for seq in 1..=ROUNDS {
        sender.broadcast(&big_request(seq, 2048));
    }
    let mut seen = 0u64;
    let end = Instant::now() + Duration::from_secs(10);
    while seen < ROUNDS && Instant::now() < end {
        let _ = sender.recv_timeout(Duration::from_millis(5));
        if let Ok(NetEvent::Peer { from: 0, msg }) = receiver.recv_timeout(Duration::from_millis(5))
        {
            assert!(matches!(msg, SmrMsg::Request(ref r) if r.payload.len() == 2048));
            seen += 1;
        }
    }
    assert_eq!(seen, ROUNDS, "peer must receive every broadcast intact");
    let snap = stats.snapshot();
    assert_eq!(snap.broadcast_msgs, ROUNDS);
    assert_eq!(
        snap.broadcast_payload_encodes, ROUNDS,
        "one serialization per broadcast, not per peer"
    );
    assert!((snap.encodes_per_broadcast() - 1.0).abs() < f64::EPSILON);
}

/// The admission cap closes inbound connections beyond
/// `max_clients` + reserved peer slots, and counts the rejections;
/// admitted clients keep working.
#[test]
fn admission_cap_rejects_excess_clients() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let mut config = TcpConfig::new(0, vec![addr.clone()], SECRET);
    config.max_clients = 1;
    let mut transport = TcpTransport::from_listener(config, listener).expect("transport");
    let stats = transport.stats_handle();

    let mut admitted = TcpStream::connect(&addr).expect("first client");
    write_client_hello(&mut admitted, 1).expect("hello");
    let request = SmrMsg::Request(Request {
        client: 1,
        seq: 1,
        payload: vec![3],
        signature: None,
    });
    write_frame(
        &mut admitted,
        &FrameKey::client(),
        &smartchain_codec::to_bytes(&request),
    )
    .expect("request frame");
    assert!(
        drive_until(&mut transport, Duration::from_secs(5), |e| matches!(
            e,
            NetEvent::Client(r) if r.client == 1
        )),
        "the admitted client must be served"
    );

    // One client slot, one client connected: the next connection is closed
    // at accept.
    let mut rejected = TcpStream::connect(&addr).expect("second connect");
    let end = Instant::now() + Duration::from_secs(5);
    rejected
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut got_eof = false;
    while Instant::now() < end && !got_eof {
        let _ = transport.recv_timeout(Duration::from_millis(20));
        match rejected.read(&mut [0u8; 16]) {
            Ok(0) => got_eof = true,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => got_eof = true,
        }
    }
    assert!(got_eof, "the over-cap connection must be closed");
    let snap = stats.snapshot();
    assert!(snap.accept_rejections >= 1, "rejection must be counted");
    assert_eq!(snap.clients_connected, 1, "the admitted client stays");
}

/// A retransmission of an already-delivered request — the client lost
/// every copy of its reply — is answered from the replica's reply cache
/// instead of dying silently at the dedup frontier. Without this, reply
/// loss (torn connection, throttled slow client) wedges the client
/// forever; with it, client retransmission repairs any dropped frame.
#[test]
fn retransmitted_delivered_request_is_answered_from_cache() {
    let dir = std::env::temp_dir().join(format!(
        "smartchain-reactor-test-recache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = RuntimeConfig {
        storage_dir: Some(dir),
        progress_timeout: Duration::from_millis(200),
        ..RuntimeConfig::default()
    };
    let cluster =
        TcpCluster::start(config, Backend::Sim, CounterApp::new).expect("boot tcp cluster");
    let addrs = cluster.cluster_config().replicas.clone();
    let client_id = 0xCAC4Eu64;
    let request = SmrMsg::Request(Request {
        client: client_id,
        seq: 1,
        payload: vec![4],
        signature: None,
    });
    let frame = {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &FrameKey::client(),
            &smartchain_codec::to_bytes(&request),
        )
        .unwrap();
        buf
    };
    let read_reply = |stream: &mut TcpStream| -> Option<Vec<u8>> {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let payload =
            smartchain_smr::transport::frame::read_frame(stream, &FrameKey::client()).ok()?;
        match smartchain_codec::from_bytes::<SmrMsg>(&payload) {
            Ok(SmrMsg::Reply(reply)) if reply.client == client_id && reply.seq == 1 => {
                Some(reply.result)
            }
            _ => None,
        }
    };
    // First pass: submit to every replica, read one real reply, then drop
    // all connections — every other reply copy dies with them.
    let first = {
        let mut conns: Vec<TcpStream> = addrs
            .iter()
            .map(|a| {
                let mut s = TcpStream::connect(a).expect("dial");
                write_client_hello(&mut s, client_id).expect("hello");
                s.write_all(&frame).expect("request");
                s
            })
            .collect();
        conns
            .iter_mut()
            .find_map(read_reply)
            .expect("first execution must reply")
    };
    // Second pass: fresh connections, same (client, seq). The request is
    // inside every replica's dedup frontier now — only the reply cache can
    // answer it.
    let mut retry = TcpStream::connect(&addrs[0]).expect("redial");
    write_client_hello(&mut retry, client_id).expect("hello");
    retry.write_all(&frame).expect("retransmit");
    let second = read_reply(&mut retry).expect("retransmission must be answered from the cache");
    assert_eq!(first, second, "cached reply must match the original");
    cluster.shutdown();
}

/// A client that connects and then stalls (never reads, never writes)
/// costs the cluster nothing: ordering proceeds and other clients commit.
/// The same run sanity-checks the transport counters end to end.
#[test]
fn stalled_client_is_isolated_and_stats_count_traffic() {
    let dir = std::env::temp_dir().join(format!(
        "smartchain-reactor-test-stall-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = RuntimeConfig {
        storage_dir: Some(dir),
        progress_timeout: Duration::from_millis(200),
        ..RuntimeConfig::default()
    };
    let mut cluster =
        TcpCluster::start(config, Backend::Sim, CounterApp::new).expect("boot tcp cluster");
    let addr = cluster.cluster_config().replicas[0].clone();

    // Register a client on replica 0, then go silent without ever reading.
    let mut stalled = TcpStream::connect(&addr).expect("stalled client");
    write_client_hello(&mut stalled, 0xDEAD).expect("hello");

    let mut sum = 0u64;
    for op in 1..=3u64 {
        let r = cluster
            .execute(vec![op as u8], Duration::from_secs(15))
            .expect("cluster must commit around the stalled client");
        sum += op;
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), sum);
    }

    let stats = cluster.transport_stats(0).expect("replica 0 stats");
    assert!(stats.frames_in > 0, "inbound frames counted: {stats:?}");
    assert!(stats.frames_out > 0, "outbound frames counted: {stats:?}");
    assert!(stats.bytes_in > stats.frames_in, "header bytes counted");
    assert!(stats.bytes_out > stats.frames_out, "header bytes counted");
    assert!(stats.writev_calls > 0, "writes are vectored: {stats:?}");
    assert!(stats.avg_coalesce() >= 1.0);
    assert_eq!(stats.queue_full_drops, 0, "no backpressure at this load");
    drop(stalled);
    cluster.shutdown();
}
