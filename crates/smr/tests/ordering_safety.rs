//! Property tests on the total-order core: under arbitrary message
//! interleavings, duplicate deliveries, and adversarial drop schedules, all
//! replicas deliver identical request sequences (safety), and with no drops
//! everything submitted is eventually delivered (liveness under synchrony).
//!
//! Randomized schedules come from a seeded splitmix64 generator so every run
//! exercises the same 48 cases without an external property-testing crate.

// Replica ids double as vector indices throughout.
#![allow(clippy::needless_range_loop)]

use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_smr::ordering::{CoreOutput, OrderingConfig, OrderingCore, SmrMsg};
use smartchain_smr::types::Request;

use smartchain_sim::rng::SimRng;

/// Seeded schedule generator over the simulator's RNG (no external crates).
struct Gen(SimRng);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(SimRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn make_cluster(n: usize, max_batch: usize, alpha: u64) -> Vec<OrderingCore> {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 40; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    (0..n)
        .map(|i| {
            OrderingCore::new(
                i,
                view.clone(),
                secrets[i].clone(),
                OrderingConfig {
                    max_batch,
                    alpha,
                    ..OrderingConfig::default()
                },
                0,
            )
        })
        .collect()
}

fn req(client: u64, seq: u64) -> Request {
    Request {
        client,
        seq,
        payload: vec![client as u8, seq as u8],
        signature: None,
    }
}

/// Drives the cluster with a seeded scheduler: `order` decides which queued
/// message is delivered next; `drop_mask` drops some deliveries entirely.
/// Returns each replica's delivered id sequence.
fn pump_randomized(
    cores: &mut [OrderingCore],
    submissions: Vec<(ReplicaId, Request)>,
    order: &[u8],
    drop_mask: &[bool],
) -> Vec<Vec<(u64, u64)>> {
    let n = cores.len();
    let mut delivered: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut queue: Vec<(ReplicaId, ReplicaId, SmrMsg)> = Vec::new();
    let handle = |from: ReplicaId,
                  out: CoreOutput,
                  queue: &mut Vec<(ReplicaId, ReplicaId, SmrMsg)>,
                  delivered: &mut Vec<Vec<(u64, u64)>>| match out {
        CoreOutput::Broadcast(m) => {
            for to in 0..n {
                if to != from {
                    queue.push((from, to, m.clone()));
                }
            }
        }
        CoreOutput::Send(to, m) => queue.push((from, to, m)),
        CoreOutput::Deliver(b) => delivered[from].extend(b.requests.iter().map(Request::id)),
        CoreOutput::NeedStateTransfer { .. } => {}
    };
    for (r, request) in submissions {
        for out in cores[r].submit(request) {
            handle(r, out, &mut queue, &mut delivered);
        }
    }
    let mut step = 0usize;
    while !queue.is_empty() && step < 100_000 {
        // Pick a pseudo-random queued message.
        let pick = order[step % order.len()] as usize % queue.len();
        let (from, to, msg) = queue.swap_remove(pick);
        let dropped = drop_mask[step % drop_mask.len()];
        step += 1;
        if dropped {
            continue;
        }
        for out in cores[to].on_message(from, msg) {
            handle(to, out, &mut queue, &mut delivered);
        }
    }
    delivered
}

/// SAFETY: any delivery order, any drops — delivered sequences are
/// prefix-compatible across replicas and contain no duplicates.
#[test]
fn prop_no_divergence_under_drops() {
    prop_no_divergence_under_drops_at(1);
}

/// The same safety property with a pipelined core (α = 4): several
/// instances are in flight at once, decisions arrive out of order, and
/// delivery must still be prefix-compatible and duplicate-free everywhere.
#[test]
fn prop_no_divergence_under_drops_alpha4() {
    prop_no_divergence_under_drops_at(4);
}

fn prop_no_divergence_under_drops_at(alpha: u64) {
    let mut g = Gen::new(0xa1);
    for case in 0..48 {
        let order: Vec<u8> = (0..64).map(|_| g.next_u64() as u8).collect();
        let drop_mask: Vec<bool> = (0..64).map(|_| g.next_u64().is_multiple_of(10)).collect();
        let clients = 1 + g.next_u64() % 4;
        let reqs = 1 + g.next_u64() % 4;
        let max_batch = 1 + (g.next_u64() as usize) % 5;
        let mut cores = make_cluster(4, max_batch, alpha);
        let mut submissions = Vec::new();
        for c in 0..clients {
            for s in 0..reqs {
                // Submit to every replica, as real clients do.
                for r in 0..4usize {
                    submissions.push((r, req(c, s)));
                }
            }
        }
        let delivered = pump_randomized(&mut cores, submissions, &order, &drop_mask);
        for a in 0..4 {
            // No duplicates within a replica.
            let mut seen = std::collections::HashSet::new();
            for id in &delivered[a] {
                assert!(
                    seen.insert(*id),
                    "case {case}: replica {a} delivered {id:?} twice"
                );
            }
            // Prefix compatibility between replicas.
            for b in (a + 1)..4 {
                let common = delivered[a].len().min(delivered[b].len());
                assert_eq!(
                    &delivered[a][..common],
                    &delivered[b][..common],
                    "case {case}: replicas {a} and {b} diverge"
                );
            }
        }
    }
}

/// LIVENESS (no drops): everything submitted is delivered everywhere.
#[test]
fn prop_all_delivered_without_drops() {
    prop_all_delivered_without_drops_at(1);
}

/// Liveness with a pipelined core (α = 4).
#[test]
fn prop_all_delivered_without_drops_alpha4() {
    prop_all_delivered_without_drops_at(4);
}

fn prop_all_delivered_without_drops_at(alpha: u64) {
    let mut g = Gen::new(0xa2);
    for case in 0..48 {
        let order: Vec<u8> = (0..64).map(|_| g.next_u64() as u8).collect();
        let clients = 1 + g.next_u64() % 4;
        let reqs = 1 + g.next_u64() % 4;
        let max_batch = 1 + (g.next_u64() as usize) % 5;
        let mut cores = make_cluster(4, max_batch, alpha);
        let mut submissions = Vec::new();
        for c in 0..clients {
            for s in 0..reqs {
                for r in 0..4usize {
                    submissions.push((r, req(c, s)));
                }
            }
        }
        let expected = (clients * reqs) as usize;
        let no_drops = vec![false];
        let delivered = pump_randomized(&mut cores, submissions, &order, &no_drops);
        for r in 0..4 {
            assert_eq!(
                delivered[r].len(),
                expected,
                "case {case}: replica {r} delivered {} of {expected}",
                delivered[r].len()
            );
        }
        // And in the identical order.
        for r in 1..4 {
            assert_eq!(&delivered[r], &delivered[0], "case {case}");
        }
    }
}
