//! Deterministic parallel execution: lane planning and the execute pool.
//!
//! After the ordering core is pipelined (α instances in flight) and PERSIST
//! completes out of order, EXECUTE is the last sequential stage — every
//! ordered batch flows through the application one transaction at a time.
//! This module lifts that ceiling the way the paper's verify stage does,
//! but *deterministically*: application state is partitioned into N
//! execution lanes, each transaction's read/write set is derived statically
//! (see [`crate::app::Application::lane_hint`]), and a batch is compiled
//! into a [`BatchPlan`] — runs of single-lane transactions that execute
//! concurrently, separated by serial barriers for cross-lane transactions.
//!
//! Determinism is by construction, not by locking:
//!
//! * two transactions on the **same** lane keep their original batch order
//!   (within-lane lists are built in order);
//! * two transactions on **different** lanes in the same parallel group
//!   touch disjoint state, so their execution order is unobservable;
//! * a **cross-lane** transaction is a barrier: everything before it
//!   completes first, it runs alone, then the next group forms.
//!
//! Results are re-emitted in original batch order, so blocks, result
//! hashes and state roots are bit-for-bit independent of the lane count —
//! and of whether lanes run on a real [`ExecPool`] (metal runtime) or are
//! merely *charged* as critical-path virtual time (simulator).

use crate::app::Application;
use crate::types::Request;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a transaction's statically derived read/write set lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneHint {
    /// Every touched key maps to this lane (`< lanes`): the transaction can
    /// run concurrently with transactions on other lanes.
    Single(usize),
    /// The transaction touches several lanes (or its footprint cannot be
    /// derived): it executes alone, as a barrier between parallel groups.
    Cross,
}

/// Per-batch conflict accounting, accumulated across batches by the
/// embedding layer (harness counters, `bench_check` observability).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictStats {
    /// Batches planned.
    pub batches: u64,
    /// Transactions whose footprint stayed on one lane.
    pub single_lane_txs: u64,
    /// Cross-lane transactions (each one a serial barrier).
    pub cross_lane_txs: u64,
    /// Parallel groups emitted (runs of concurrently executable txs).
    pub parallel_groups: u64,
    /// Sum over groups of the critical-path length: the longest lane of
    /// each parallel group plus one per barrier. This is what EXECUTE
    /// costs with enough cores — the simulator charges
    /// `execute_ns * critical_path_txs` instead of `execute_ns * txs`.
    pub critical_path_txs: u64,
}

impl ConflictStats {
    /// Folds another accumulator (or one batch's stats) into this one.
    pub fn absorb(&mut self, other: &ConflictStats) {
        self.batches += other.batches;
        self.single_lane_txs += other.single_lane_txs;
        self.cross_lane_txs += other.cross_lane_txs;
        self.parallel_groups += other.parallel_groups;
        self.critical_path_txs += other.critical_path_txs;
    }

    /// Total transactions planned.
    pub fn planned_txs(&self) -> u64 {
        self.single_lane_txs + self.cross_lane_txs
    }
}

/// One phase of a batch plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanGroup {
    /// Per-lane transaction indices (into the planned slice), each lane's
    /// list in original batch order, lanes mutually disjoint in state.
    Parallel(Vec<Vec<usize>>),
    /// A cross-lane transaction executing alone.
    Serial(usize),
}

/// An ordered batch compiled into parallel groups and serial barriers.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Lane count the plan was built for.
    pub lanes: usize,
    /// Phases, in execution order.
    pub groups: Vec<PlanGroup>,
    /// This batch's conflict accounting (`batches == 1`).
    pub stats: ConflictStats,
}

/// Compiles one batch's lane hints into a [`BatchPlan`].
///
/// Walks the transactions in order: single-lane transactions accumulate
/// into the current parallel group (on their lane, preserving order);
/// a cross-lane transaction seals the group and becomes a serial barrier.
pub fn plan_batch(hints: &[LaneHint], lanes: usize) -> BatchPlan {
    let lanes = lanes.max(1);
    let mut groups = Vec::new();
    let mut current: Vec<Vec<usize>> = vec![Vec::new(); lanes];
    let mut open = false;
    let mut stats = ConflictStats {
        batches: 1,
        ..ConflictStats::default()
    };
    fn seal(
        current: &mut Vec<Vec<usize>>,
        open: &mut bool,
        groups: &mut Vec<PlanGroup>,
        stats: &mut ConflictStats,
        lanes: usize,
    ) {
        if *open {
            let longest = current.iter().map(Vec::len).max().unwrap_or(0) as u64;
            stats.parallel_groups += 1;
            stats.critical_path_txs += longest;
            groups.push(PlanGroup::Parallel(std::mem::replace(
                current,
                vec![Vec::new(); lanes],
            )));
            *open = false;
        }
    }
    for (index, hint) in hints.iter().enumerate() {
        match hint {
            LaneHint::Single(lane) => {
                current[lane % lanes].push(index);
                open = true;
                stats.single_lane_txs += 1;
            }
            LaneHint::Cross => {
                seal(&mut current, &mut open, &mut groups, &mut stats, lanes);
                groups.push(PlanGroup::Serial(index));
                stats.cross_lane_txs += 1;
                stats.critical_path_txs += 1;
            }
        }
    }
    seal(&mut current, &mut open, &mut groups, &mut stats, lanes);
    BatchPlan {
        lanes,
        groups,
        stats,
    }
}

/// Executes a planned batch against an application, via
/// [`Application::execute_group`] for parallel groups and plain
/// [`Application::execute`] for barriers. `requests` is the planned slice
/// (plan indices index into it); results come back aligned with it.
///
/// This is the single scheduler behind both deployments: the simulator
/// calls it with `pool = None` (lanes are charged as virtual time), the
/// metal runtime passes its [`ExecPool`].
pub fn run_plan<A: Application + ?Sized>(
    app: &mut A,
    requests: &[&Request],
    plan: &BatchPlan,
    pool: Option<&ExecPool>,
) -> Vec<Vec<u8>> {
    let mut results: Vec<Option<Vec<u8>>> = vec![None; requests.len()];
    for group in &plan.groups {
        match group {
            PlanGroup::Serial(index) => {
                results[*index] = Some(app.execute(requests[*index]));
            }
            PlanGroup::Parallel(lanes) => {
                let group: Vec<Vec<(usize, &Request)>> = lanes
                    .iter()
                    .map(|idxs| idxs.iter().map(|&i| (i, requests[i])).collect())
                    .collect();
                for (index, result) in app.execute_group(&group, pool) {
                    results[index] = Some(result);
                }
            }
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("plan covers every planned request"))
        .collect()
}

/// A boxed unit of work for the pool.
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

type Task = Box<dyn FnOnce() + Send>;

/// A minimal multi-producer multi-consumer task queue (std has only MPSC) —
/// same shape as the verify pool's queue in `smartchain-crypto`.
struct TaskQueue {
    state: Mutex<(VecDeque<Task>, bool)>,
    ready: Condvar,
}

impl TaskQueue {
    fn new() -> TaskQueue {
        TaskQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, task: Task) {
        let mut st = self.state.lock().expect("exec queue lock");
        st.0.push_back(task);
        self.ready.notify_one();
    }

    /// Blocks until a task is available; `None` once closed and drained.
    fn pop(&self) -> Option<Task> {
        let mut st = self.state.lock().expect("exec queue lock");
        loop {
            if let Some(task) = st.0.pop_front() {
                return Some(task);
            }
            if st.1 {
                return None;
            }
            st = self.ready.wait(st).expect("exec queue lock");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("exec queue lock");
        st.1 = true;
        self.ready.notify_all();
    }
}

/// A fixed-size pool of execution workers — the wall-clock backend of the
/// parallel EXECUTE stage, mirroring [`smartchain_crypto::pool::VerifyPool`]:
/// persistent worker threads over an MPMC queue, results collected in job
/// order per call.
///
/// # Examples
///
/// ```
/// use smartchain_smr::exec::{ExecPool, Job};
///
/// let pool = ExecPool::new(4);
/// let jobs: Vec<Job<u64>> = (0..8u64).map(|i| Box::new(move || i * i) as Job<u64>).collect();
/// assert_eq!(pool.run(jobs), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct ExecPool {
    tasks: Arc<TaskQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ExecPool {
    /// Spawns a pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> ExecPool {
        assert!(workers > 0, "pool needs at least one worker");
        let tasks = Arc::new(TaskQueue::new());
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&tasks);
            handles.push(std::thread::spawn(move || {
                while let Some(task) = queue.pop() {
                    task();
                }
            }));
        }
        ExecPool {
            tasks,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `jobs` on the workers, returning their outputs in job order.
    /// Blocks until every job completed.
    pub fn run<T: Send + 'static>(&self, jobs: Vec<Job<T>>) -> Vec<T> {
        let n = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for (index, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.tasks.push(Box::new(move || {
                let _ = tx.send((index, job()));
            }));
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, value) = rx.recv().expect("exec worker alive while pool exists");
            out[index] = Some(value);
        }
        out.into_iter()
            .map(|v| v.expect("every job reports once"))
            .collect()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.tasks.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(hints: &[LaneHint], lanes: usize) -> BatchPlan {
        plan_batch(hints, lanes)
    }

    #[test]
    fn all_single_lane_is_one_parallel_group() {
        use LaneHint::Single;
        let p = plan(&[Single(0), Single(1), Single(0), Single(3)], 4);
        assert_eq!(p.groups.len(), 1);
        let PlanGroup::Parallel(lanes) = &p.groups[0] else {
            panic!("expected parallel group");
        };
        assert_eq!(lanes[0], vec![0, 2], "within-lane order preserved");
        assert_eq!(lanes[1], vec![1]);
        assert_eq!(lanes[3], vec![3]);
        assert_eq!(p.stats.single_lane_txs, 4);
        assert_eq!(p.stats.cross_lane_txs, 0);
        assert_eq!(p.stats.parallel_groups, 1);
        assert_eq!(p.stats.critical_path_txs, 2, "longest lane has 2 txs");
    }

    #[test]
    fn cross_lane_tx_is_a_barrier() {
        use LaneHint::{Cross, Single};
        let p = plan(&[Single(0), Single(1), Cross, Single(0), Single(0)], 2);
        assert_eq!(p.groups.len(), 3);
        assert!(matches!(&p.groups[0], PlanGroup::Parallel(_)));
        assert_eq!(p.groups[1], PlanGroup::Serial(2));
        let PlanGroup::Parallel(after) = &p.groups[2] else {
            panic!("expected trailing parallel group");
        };
        assert_eq!(after[0], vec![3, 4]);
        // Critical path: max(1,1) + 1 (barrier) + 2 (lane 0 run).
        assert_eq!(p.stats.critical_path_txs, 4);
        assert_eq!(p.stats.parallel_groups, 2);
        assert_eq!(p.stats.cross_lane_txs, 1);
    }

    #[test]
    fn all_cross_degrades_to_serial_cost() {
        let hints = vec![LaneHint::Cross; 5];
        let p = plan(&hints, 8);
        assert_eq!(p.groups.len(), 5);
        assert_eq!(p.stats.critical_path_txs, 5, "no cheaper than serial");
        assert_eq!(p.stats.parallel_groups, 0);
    }

    #[test]
    fn empty_batch_plans_empty() {
        let p = plan(&[], 4);
        assert!(p.groups.is_empty());
        assert_eq!(p.stats.critical_path_txs, 0);
        assert_eq!(p.stats.batches, 1);
    }

    #[test]
    fn out_of_range_lane_wraps() {
        let p = plan(&[LaneHint::Single(7)], 2);
        let PlanGroup::Parallel(lanes) = &p.groups[0] else {
            panic!("expected parallel group");
        };
        assert_eq!(lanes[7 % 2], vec![0]);
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut acc = ConflictStats::default();
        acc.absorb(&plan(&[LaneHint::Single(0), LaneHint::Cross], 2).stats);
        acc.absorb(&plan(&[LaneHint::Single(1)], 2).stats);
        assert_eq!(acc.batches, 2);
        assert_eq!(acc.single_lane_txs, 2);
        assert_eq!(acc.cross_lane_txs, 1);
        assert_eq!(acc.planned_txs(), 3);
    }

    #[test]
    fn pool_returns_results_in_job_order() {
        let pool = ExecPool::new(3);
        let jobs: Vec<Job<usize>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Vary the work so completion order differs from job order.
                    let mut acc = i;
                    for _ in 0..((64 - i) * 50) {
                        acc = acc.wrapping_mul(31).wrapping_add(7);
                    }
                    std::hint::black_box(acc);
                    i
                }) as Job<usize>
            })
            .collect();
        assert_eq!(pool.run(jobs), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reusable_across_runs() {
        let pool = ExecPool::new(2);
        for round in 0..3u64 {
            let jobs: Vec<Job<u64>> = (0..8u64)
                .map(|i| Box::new(move || round * 100 + i) as Job<u64>)
                .collect();
            let out = pool.run(jobs);
            assert_eq!(out[7], round * 100 + 7);
        }
    }

    #[test]
    fn pool_handles_empty_run() {
        let pool = ExecPool::new(2);
        assert!(pool.run(Vec::<Job<u8>>::new()).is_empty());
    }

    #[test]
    fn pool_actually_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ExecPool::new(2);
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job<()>> = (0..2)
            .map(|_| {
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                Box::new(move || {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }) as Job<()>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(peak.load(Ordering::SeqCst), 2, "both lanes ran at once");
    }
}
