//! The Mod-SMaRt total-order core: a sans-IO state machine that turns client
//! requests into an ordered stream of batches by running a sequence of
//! VP-Consensus instances (one at a time — the paper's α = 1), with
//! regency-based leader changes.

use crate::types::{decode_batch, encode_batch, Request};
use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_consensus::instance::{Decision, Instance};
use smartchain_consensus::messages::{ConsensusMsg, Output};
use smartchain_consensus::synchronizer::{StopData, SyncAction, SyncMsg, Synchronizer};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::SecretKey;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// How many instances ahead of `last_decided` a replica will participate in
/// (catch-up window before state transfer is required).
const INSTANCE_WINDOW: u64 = 8;

/// Wire messages exchanged by SMR replicas (clients speak
/// [`SmrMsg::Request`]/[`SmrMsg::Reply`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SmrMsg {
    /// Client request (sent by clients to all replicas).
    Request(crate::types::Request),
    /// Consensus-instance traffic.
    Consensus(ConsensusMsg),
    /// Synchronization-phase traffic.
    Sync(SyncMsg),
    /// Reply to a client.
    Reply(crate::types::Reply),
}

impl SmrMsg {
    /// Wire size in bytes (transport framing + canonical encoding), derived
    /// from the [`Encode`] output — the encoder is the single source of
    /// truth for the simulator's NIC model.
    pub fn wire_size(&self) -> usize {
        smartchain_codec::FRAME_BYTES + self.encoded_len()
    }
}

impl Encode for SmrMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SmrMsg::Request(r) => {
                0u8.encode(out);
                r.encode(out);
            }
            SmrMsg::Consensus(c) => {
                1u8.encode(out);
                c.encode(out);
            }
            SmrMsg::Sync(s) => {
                2u8.encode(out);
                s.encode(out);
            }
            SmrMsg::Reply(r) => {
                3u8.encode(out);
                r.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            SmrMsg::Request(r) => r.encoded_len(),
            SmrMsg::Consensus(c) => c.encoded_len(),
            SmrMsg::Sync(s) => s.encoded_len(),
            SmrMsg::Reply(r) => r.encoded_len(),
        }
    }
}

impl Decode for SmrMsg {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(SmrMsg::Request(crate::types::Request::decode(input)?)),
            1 => Ok(SmrMsg::Consensus(ConsensusMsg::decode(input)?)),
            2 => Ok(SmrMsg::Sync(SyncMsg::decode(input)?)),
            3 => Ok(SmrMsg::Reply(crate::types::Reply::decode(input)?)),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

/// A network message type that can carry SMR traffic — lets generic
/// components (e.g. the closed-loop client actor) work over richer message
/// enums such as SmartChain's.
pub trait SmrEnvelope: Clone + 'static {
    /// Wraps an SMR message.
    fn from_smr(msg: SmrMsg) -> Self;
    /// Views this message as a client reply, if it is one.
    fn as_reply(&self) -> Option<&crate::types::Reply>;
    /// Wire size in bytes.
    fn envelope_size(&self) -> usize;
}

impl SmrEnvelope for SmrMsg {
    fn from_smr(msg: SmrMsg) -> Self {
        msg
    }
    fn as_reply(&self) -> Option<&crate::types::Reply> {
        match self {
            SmrMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
    fn envelope_size(&self) -> usize {
        self.wire_size()
    }
}

/// A totally-ordered, decided batch handed to the upper layer.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderedBatch {
    /// Consensus instance that decided this batch.
    pub instance: u64,
    /// Epoch of the decision.
    pub epoch: u32,
    /// The decoded requests in proposal order.
    pub requests: Vec<Request>,
    /// The decision proof (quorum of signed ACCEPTs).
    pub proof: smartchain_consensus::proof::DecisionProof,
}

/// Outputs of the ordering core.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreOutput {
    /// Broadcast to all replicas in the view.
    Broadcast(SmrMsg),
    /// Point-to-point send.
    Send(ReplicaId, SmrMsg),
    /// In-order delivery of a decided batch.
    Deliver(OrderedBatch),
    /// The replica fell more than the window behind; the embedding must run
    /// state transfer up to (at least) the given instance.
    NeedStateTransfer {
        /// Some replica has decided at least this instance.
        observed_instance: u64,
    },
}

/// Configuration of the ordering core.
#[derive(Clone, Copy, Debug)]
pub struct OrderingConfig {
    /// Maximum requests per proposed batch (the paper/SmartChain use 512).
    pub max_batch: usize,
}

impl Default for OrderingConfig {
    fn default() -> Self {
        OrderingConfig { max_batch: 512 }
    }
}

/// The per-replica ordering state machine.
pub struct OrderingCore {
    me: ReplicaId,
    view: View,
    secret: SecretKey,
    config: OrderingConfig,
    synchronizer: Synchronizer,
    instances: BTreeMap<u64, Instance>,
    /// Highest instance delivered to the upper layer.
    last_delivered: u64,
    /// Decisions that arrived out of order, waiting for their predecessors.
    undelivered: BTreeMap<u64, Decision>,
    /// Requests admitted and not yet delivered.
    pending: VecDeque<Request>,
    /// Ids of live entries in `pending` (O(1) dedup; removal is lazy —
    /// deque entries whose id left this set are dropped when encountered).
    pending_ids: std::collections::HashSet<(u64, u64)>,
    /// Instance/epoch pairs we already proposed in (leader bookkeeping).
    proposed: HashMap<u64, u32>,
    /// Per-client highest delivered sequence number (dedup).
    delivered_seq: HashMap<u64, u64>,
}

impl std::fmt::Debug for OrderingCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderingCore")
            .field("me", &self.me)
            .field("last_delivered", &self.last_delivered)
            .field("pending", &self.pending.len())
            .field("regency", &self.synchronizer.regency())
            .finish()
    }
}

impl OrderingCore {
    /// Creates the core for replica `me` in `view`, using `secret` as this
    /// replica's consensus key. `next_instance` is 1 + the highest instance
    /// already applied (1 for a fresh start; decided instances start at 1 so
    /// that block numbers align with the genesis block being 0).
    pub fn new(
        me: ReplicaId,
        view: View,
        secret: SecretKey,
        config: OrderingConfig,
        last_applied: u64,
    ) -> OrderingCore {
        OrderingCore {
            me,
            synchronizer: Synchronizer::new(me, view.clone()),
            view,
            secret,
            config,
            instances: BTreeMap::new(),
            last_delivered: last_applied,
            undelivered: BTreeMap::new(),
            pending: VecDeque::new(),
            pending_ids: std::collections::HashSet::new(),
            proposed: HashMap::new(),
            delivered_seq: HashMap::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Current regency (for timeout bookkeeping by the embedding).
    pub fn regency(&self) -> u32 {
        self.synchronizer.regency()
    }

    /// Leader of the current regency.
    pub fn leader(&self) -> ReplicaId {
        self.synchronizer.current_leader()
    }

    /// True when this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    /// Highest instance delivered so far.
    pub fn last_delivered(&self) -> u64 {
        self.last_delivered
    }

    /// Number of admitted, undelivered requests.
    pub fn pending_len(&self) -> usize {
        self.pending_ids.len()
    }

    /// Replaces the view and resets consensus machinery (used after
    /// reconfiguration installs a new membership, per paper §V-D). Open
    /// instances are dropped — reconfigurations happen at instance
    /// boundaries, right after a delivery.
    pub fn install_view(&mut self, view: View, secret: SecretKey) {
        self.view = view.clone();
        self.secret = secret;
        self.synchronizer = Synchronizer::new(self.me, view);
        self.instances = BTreeMap::new();
        self.proposed.clear();
    }

    /// Records that `(client, seq)` was delivered in replayed history —
    /// state transfer MUST call this for every replayed request, or the
    /// recovering replica's duplicate filter diverges from its peers' and
    /// client retransmissions fork the delivered sequence.
    pub fn note_delivered(&mut self, client: u64, seq: u64) {
        self.delivered_seq
            .entry(client)
            .and_modify(|s| *s = (*s).max(seq))
            .or_insert(seq);
        self.pending_ids.remove(&(client, seq));
    }

    /// Fast-forwards after state transfer: everything up to `instance` is
    /// already applied via a snapshot/log replay.
    pub fn fast_forward(&mut self, instance: u64) {
        if instance <= self.last_delivered {
            return;
        }
        self.last_delivered = instance;
        self.undelivered.retain(|&i, _| i > instance);
        self.instances.retain(|&i, _| i > instance);
    }

    /// Admits a request for ordering. The embedding is responsible for
    /// signature policy (verify before admitting, or charge pool time).
    /// Returns outputs (a proposal may start immediately).
    pub fn submit(&mut self, request: Request) -> Vec<CoreOutput> {
        // Drop already-delivered or already-pending duplicates.
        if self
            .delivered_seq
            .get(&request.client)
            .is_some_and(|&s| request.seq <= s)
        {
            return Vec::new();
        }
        if !self.pending_ids.insert(request.id()) {
            return Vec::new();
        }
        self.pending.push_back(request);
        self.try_propose()
    }

    /// Called by the embedding when its progress timer fires and nothing was
    /// delivered since the timer was armed: starts a leader change.
    pub fn on_progress_timeout(&mut self) -> Vec<CoreOutput> {
        if self.pending_ids.is_empty() && self.undelivered.is_empty() {
            return Vec::new();
        }
        let actions = self.synchronizer.request_change();
        self.apply_sync_actions(actions)
    }

    /// Handles a message from another replica.
    pub fn on_message(&mut self, from: ReplicaId, msg: SmrMsg) -> Vec<CoreOutput> {
        match msg {
            SmrMsg::Request(req) => self.submit(req),
            SmrMsg::Consensus(cmsg) => self.on_consensus(from, cmsg),
            SmrMsg::Sync(smsg) => {
                let actions = self.synchronizer.on_message(from, smsg);
                self.apply_sync_actions(actions)
            }
            SmrMsg::Reply(_) => Vec::new(), // replicas ignore replies
        }
    }

    fn on_consensus(&mut self, from: ReplicaId, msg: ConsensusMsg) -> Vec<CoreOutput> {
        let instance_id = msg.instance();
        if instance_id <= self.last_delivered {
            // Late traffic for an already-delivered instance: serve fetches
            // (a lagging peer may need the value), drop the rest.
            if let (ConsensusMsg::FetchValue { .. }, Some(inst)) =
                (&msg, self.instances.get_mut(&instance_id))
            {
                let (outs, _) = inst.on_message(from, msg);
                return outs.into_iter().map(Self::net).collect();
            }
            return Vec::new();
        }
        if instance_id > self.last_delivered + INSTANCE_WINDOW {
            return vec![CoreOutput::NeedStateTransfer {
                observed_instance: instance_id,
            }];
        }
        let mut outputs = Vec::new();
        let inst = self.instance_entry(instance_id);
        let (outs, decision) = inst.on_message(from, msg);
        outputs.extend(outs.into_iter().map(Self::net));
        if let Some(d) = decision {
            outputs.extend(self.on_decision(d));
        }
        outputs
    }

    fn instance_entry(&mut self, id: u64) -> &mut Instance {
        let me = self.me;
        let view = self.view.clone();
        let secret = self.secret.clone();
        let regency = self.synchronizer.regency();
        let leader = self.synchronizer.current_leader();
        self.instances
            .entry(id)
            .or_insert_with(|| Instance::new(id, me, view, secret, leader, regency))
    }

    fn on_decision(&mut self, decision: Decision) -> Vec<CoreOutput> {
        self.undelivered.insert(decision.instance, decision);
        let mut outputs = Vec::new();
        // Release contiguous decisions in order.
        while let Some(d) = self.undelivered.remove(&(self.last_delivered + 1)) {
            self.last_delivered = d.instance;
            // A malformed decided batch delivers empty.
            let requests = decode_batch(&d.value).unwrap_or_default();
            // Dedup against already-delivered requests and drop them from
            // our own pending pool.
            let mut fresh = Vec::with_capacity(requests.len());
            for req in requests {
                let seen = self
                    .delivered_seq
                    .get(&req.client)
                    .is_some_and(|&s| req.seq <= s);
                self.pending_ids.remove(&req.id());
                if !seen {
                    self.delivered_seq
                        .entry(req.client)
                        .and_modify(|s| *s = (*s).max(req.seq))
                        .or_insert(req.seq);
                    fresh.push(req);
                }
            }
            outputs.push(CoreOutput::Deliver(OrderedBatch {
                instance: d.instance,
                epoch: d.epoch,
                requests: fresh,
                proof: d.proof.clone(),
            }));
        }
        // Prune old instances (keep a tail to serve FetchValue).
        let keep_from = self.last_delivered.saturating_sub(INSTANCE_WINDOW);
        self.instances.retain(|&i, _| i >= keep_from);
        outputs.extend(self.try_propose());
        outputs
    }

    /// Starts the next consensus if this replica leads and work is queued.
    pub fn try_propose(&mut self) -> Vec<CoreOutput> {
        if !self.is_leader() || self.synchronizer.is_stopped() || self.pending_ids.is_empty() {
            return Vec::new();
        }
        let next = self.last_delivered + 1;
        let regency = self.synchronizer.regency();
        if self.proposed.get(&next).is_some_and(|&e| e >= regency) {
            return Vec::new();
        }
        if self.instances.get(&next).is_some_and(Instance::is_decided) {
            return Vec::new();
        }
        // Drop stale deque entries (ids removed on delivery) lazily, then
        // take up to a batch of live requests (which stay queued until their
        // own delivery removes them).
        while let Some(front) = self.pending.front() {
            if self.pending_ids.contains(&front.id()) {
                break;
            }
            self.pending.pop_front();
        }
        let batch: Vec<Request> = self
            .pending
            .iter()
            .filter(|r| self.pending_ids.contains(&r.id()))
            .take(self.config.max_batch)
            .cloned()
            .collect();
        if batch.is_empty() {
            return Vec::new();
        }
        let value = encode_batch(&batch);
        self.proposed.insert(next, regency);
        let me = self.me;
        let inst = self.instance_entry(next);
        let mut outputs: Vec<CoreOutput> = inst
            .propose(value.clone())
            .into_iter()
            .map(Self::net)
            .collect();
        // The broadcast does not loop back; handle our own proposal.
        let (outs, decision) = inst.on_message(
            me,
            ConsensusMsg::Propose {
                instance: next,
                epoch: regency,
                value,
            },
        );
        outputs.extend(outs.into_iter().map(Self::net));
        if let Some(d) = decision {
            outputs.extend(self.on_decision(d));
        }
        outputs
    }

    fn apply_sync_actions(&mut self, actions: Vec<SyncAction>) -> Vec<CoreOutput> {
        let mut outputs = Vec::new();
        for action in actions {
            match action {
                SyncAction::Broadcast(m) => outputs.push(CoreOutput::Broadcast(SmrMsg::Sync(m))),
                SyncAction::Send(to, m) => outputs.push(CoreOutput::Send(to, SmrMsg::Sync(m))),
                SyncAction::ProvideStopData { regency, leader } => {
                    let locked = self
                        .instances
                        .get(&(self.last_delivered + 1))
                        .and_then(Instance::locked_value)
                        .and_then(|(value, cert)| {
                            cert.map(|c| smartchain_consensus::synchronizer::LockedReport {
                                instance: self.last_delivered + 1,
                                epoch: c.epoch,
                                value,
                                cert: c,
                            })
                        });
                    let msg = self.synchronizer.make_stopdata(
                        regency,
                        StopData {
                            last_decided: self.last_delivered,
                            locked,
                        },
                    );
                    if leader == self.me {
                        let actions = self.synchronizer.on_message(self.me, msg);
                        outputs.extend(self.apply_sync_actions(actions));
                    } else {
                        outputs.push(CoreOutput::Send(leader, SmrMsg::Sync(msg)));
                    }
                }
                SyncAction::Install {
                    regency,
                    leader,
                    adopt,
                } => {
                    let next = self.last_delivered + 1;
                    let inst = self.instance_entry(next);
                    inst.advance_epoch(regency, leader);
                    // Adopt the carried value only if it belongs to OUR open
                    // instance. A replica that already delivered that
                    // instance must not re-decide its content one slot later
                    // — that is precisely how histories fork.
                    let adopt_here = match &adopt {
                        Some((instance, value)) if *instance == next => Some(value.clone()),
                        _ => None,
                    };
                    if let Some(value) = adopt_here.clone() {
                        inst.adopt_value(value);
                    }
                    if leader == self.me {
                        if let Some(value) = adopt_here {
                            // Re-propose the locked value in the new epoch.
                            self.proposed.insert(next, regency);
                            let me = self.me;
                            let inst = self.instance_entry(next);
                            let mut outs: Vec<CoreOutput> = inst
                                .propose(value.clone())
                                .into_iter()
                                .map(Self::net)
                                .collect();
                            let (more, decision) = inst.on_message(
                                me,
                                ConsensusMsg::Propose {
                                    instance: next,
                                    epoch: regency,
                                    value,
                                },
                            );
                            outs.extend(more.into_iter().map(Self::net));
                            if let Some(d) = decision {
                                outs.extend(self.on_decision(d));
                            }
                            outputs.extend(outs);
                        } else {
                            outputs.extend(self.try_propose());
                        }
                    }
                }
            }
        }
        outputs
    }

    fn net(out: Output<ConsensusMsg>) -> CoreOutput {
        match out {
            Output::Broadcast(m) => CoreOutput::Broadcast(SmrMsg::Consensus(m)),
            Output::Send(to, m) => CoreOutput::Send(to, SmrMsg::Consensus(m)),
        }
    }
}

#[cfg(test)]
mod tests {
    // Replica ids double as vector indices throughout these tests.
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use smartchain_crypto::keys::Backend;

    fn make_cluster(n: usize) -> Vec<OrderingCore> {
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 30; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        (0..n)
            .map(|i| {
                OrderingCore::new(
                    i,
                    view.clone(),
                    secrets[i].clone(),
                    OrderingConfig { max_batch: 4 },
                    0,
                )
            })
            .collect()
    }

    fn req(client: u64, seq: u64) -> Request {
        Request {
            client,
            seq,
            payload: vec![client as u8, seq as u8],
            signature: None,
        }
    }

    /// Synchronously routes all outputs until quiescence; collects deliveries
    /// per replica. `down` nodes neither send nor receive.
    fn pump(
        cores: &mut [OrderingCore],
        initial: Vec<(ReplicaId, CoreOutput)>,
        down: &[ReplicaId],
    ) -> Vec<Vec<OrderedBatch>> {
        let n = cores.len();
        let mut delivered: Vec<Vec<OrderedBatch>> = vec![Vec::new(); n];
        let mut queue: VecDeque<(ReplicaId, ReplicaId, SmrMsg)> = VecDeque::new();
        let handle = |from: ReplicaId,
                      out: CoreOutput,
                      queue: &mut VecDeque<(ReplicaId, ReplicaId, SmrMsg)>,
                      delivered: &mut Vec<Vec<OrderedBatch>>| {
            match out {
                CoreOutput::Broadcast(m) => {
                    for to in 0..n {
                        if to != from && !down.contains(&to) {
                            queue.push_back((from, to, m.clone()));
                        }
                    }
                }
                CoreOutput::Send(to, m) => {
                    if !down.contains(&to) {
                        queue.push_back((from, to, m));
                    }
                }
                CoreOutput::Deliver(b) => delivered[from].push(b),
                CoreOutput::NeedStateTransfer { .. } => {}
            }
        };
        for (from, out) in initial {
            handle(from, out, &mut queue, &mut delivered);
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            if down.contains(&to) {
                continue;
            }
            for out in cores[to].on_message(from, msg) {
                handle(to, out, &mut queue, &mut delivered);
            }
        }
        delivered
    }

    #[test]
    fn requests_are_ordered_and_delivered_everywhere() {
        let mut cores = make_cluster(4);
        let mut initial = Vec::new();
        for i in 0..6u64 {
            for out in cores[0].submit(req(i, 0)) {
                initial.push((0usize, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[]);
        for (r, batches) in delivered.iter().enumerate() {
            let total: usize = batches.iter().map(|b| b.requests.len()).sum();
            assert_eq!(total, 6, "replica {r} delivered {total}");
            // max_batch = 4 so at least two instances ran.
            assert!(batches.len() >= 2, "replica {r}");
            // Instances are delivered in order.
            let ids: Vec<u64> = batches.iter().map(|b| b.instance).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted);
        }
        // All replicas delivered identical sequences.
        let seq0: Vec<(u64, u64)> = delivered[0]
            .iter()
            .flat_map(|b| b.requests.iter().map(Request::id))
            .collect();
        for r in 1..4 {
            let seq: Vec<(u64, u64)> = delivered[r]
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(seq, seq0, "replica {r} ordering differs");
        }
    }

    #[test]
    fn duplicate_requests_delivered_once() {
        let mut cores = make_cluster(4);
        let mut initial = Vec::new();
        // The same request admitted twice at the leader plus once elsewhere.
        for out in cores[0].submit(req(7, 1)) {
            initial.push((0usize, out));
        }
        for out in cores[0].submit(req(7, 1)) {
            initial.push((0usize, out));
        }
        for out in cores[1].submit(req(7, 1)) {
            initial.push((1usize, out));
        }
        let delivered = pump(&mut cores, initial, &[]);
        for (r, batches) in delivered.iter().enumerate() {
            let ids: Vec<(u64, u64)> = batches
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(ids, vec![(7, 1)], "replica {r}: {ids:?}");
        }
    }

    #[test]
    fn proofs_attached_to_deliveries_verify() {
        let mut cores = make_cluster(4);
        let view = cores[0].view().clone();
        let mut initial = Vec::new();
        for out in cores[0].submit(req(1, 1)) {
            initial.push((0usize, out));
        }
        let delivered = pump(&mut cores, initial, &[]);
        for batches in &delivered {
            for b in batches {
                assert!(b.proof.verify(&view), "delivery proof must verify");
            }
        }
    }

    #[test]
    fn progress_resumes_after_leader_change() {
        let mut cores = make_cluster(4);
        // Leader 0 is down; submit to the others.
        let mut initial = Vec::new();
        for r in 1..4usize {
            for out in cores[r].submit(req(42, 5)) {
                initial.push((r, out));
            }
        }
        // Nothing decides while leader is down.
        let delivered = pump(&mut cores, initial, &[0]);
        assert!(delivered.iter().all(|d| d.is_empty()));
        // Timeouts fire at the live replicas.
        let mut initial = Vec::new();
        for r in 1..4usize {
            for out in cores[r].on_progress_timeout() {
                initial.push((r, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[0]);
        for r in 1..4usize {
            let total: usize = delivered[r].iter().map(|b| b.requests.len()).sum();
            assert_eq!(total, 1, "replica {r} must deliver after leader change");
        }
        for r in 1..4usize {
            assert_eq!(cores[r].regency(), 1);
            assert_eq!(cores[r].leader(), 1);
        }
    }

    #[test]
    fn submit_on_follower_does_not_propose() {
        let mut cores = make_cluster(4);
        let outs = cores[2].submit(req(1, 1));
        assert!(
            outs.iter().all(|o| !matches!(
                o,
                CoreOutput::Broadcast(SmrMsg::Consensus(ConsensusMsg::Propose { .. }))
            )),
            "followers must not propose"
        );
    }

    #[test]
    fn far_future_instance_triggers_state_transfer_request() {
        let mut cores = make_cluster(4);
        let sig = SecretKey::from_seed(Backend::Sim, &[30u8; 32]).sign(b"w");
        let outs = cores[3].on_message(
            0,
            SmrMsg::Consensus(ConsensusMsg::Write {
                instance: 100,
                epoch: 0,
                value_hash: [0u8; 32],
                signature: sig,
            }),
        );
        assert!(outs.iter().any(|o| matches!(
            o,
            CoreOutput::NeedStateTransfer {
                observed_instance: 100
            }
        )));
    }

    #[test]
    fn fast_forward_skips_instances() {
        let mut cores = make_cluster(4);
        cores[0].fast_forward(50);
        assert_eq!(cores[0].last_delivered(), 50);
        // Traffic for instance 51 is now in-window.
        let sig = SecretKey::from_seed(Backend::Sim, &[31u8; 32]).sign(b"w");
        let outs = cores[0].on_message(
            1,
            SmrMsg::Consensus(ConsensusMsg::Write {
                instance: 51,
                epoch: 0,
                value_hash: [0u8; 32],
                signature: sig,
            }),
        );
        assert!(outs
            .iter()
            .all(|o| !matches!(o, CoreOutput::NeedStateTransfer { .. })));
    }
}

#[cfg(test)]
mod wire_len_tests {
    use super::*;
    use crate::types::{Reply, Request};

    #[test]
    fn encoded_len_override_matches_encoding() {
        let msgs = vec![
            SmrMsg::Request(Request {
                client: 1,
                seq: 2,
                payload: vec![1; 30],
                signature: None,
            }),
            SmrMsg::Consensus(ConsensusMsg::Propose {
                instance: 1,
                epoch: 0,
                value: vec![2; 50],
            }),
            SmrMsg::Reply(Reply {
                client: 1,
                seq: 2,
                result: vec![3; 10],
                replica: 0,
            }),
        ];
        for m in msgs {
            assert_eq!(m.encoded_len(), m.to_vec().len());
            assert_eq!(
                m.wire_size(),
                smartchain_codec::FRAME_BYTES + m.to_vec().len()
            );
        }
    }
}
