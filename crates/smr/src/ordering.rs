//! The Mod-SMaRt total-order core: a sans-IO state machine that turns client
//! requests into an ordered stream of batches by running a *windowed
//! pipeline* of VP-Consensus instances with regency-based leader changes.
//!
//! [`OrderingConfig::alpha`] bounds how many instances the leader keeps in
//! flight at once (the paper's α; 1 reproduces the seed's strictly
//! sequential core bit-for-bit). Followers participate in any instance
//! within the window, decisions are buffered in `undelivered`, and batches
//! are handed to the upper layer strictly in instance order. Leader changes
//! collect locked values for **all** in-flight instances (a per-instance
//! STOPDATA/SYNC vector) so no possibly-decided value is lost, and the new
//! leader re-proposes each carried value at its own instance.

use crate::types::{decode_batch, encode_batch, Request};
use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_consensus::instance::{Decision, Instance};
use smartchain_consensus::messages::{ConsensusMsg, Output};
use smartchain_consensus::proof::DecisionProof;
use smartchain_consensus::synchronizer::{
    LockedReport, StopData, SyncAction, SyncMsg, Synchronizer,
};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{SecretKey, Signature};
use smartchain_crypto::pool::{verify_batch_sequential, VerifyPool};
use smartchain_crypto::ValueBytes;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// How many instances ahead of `last_decided` a replica will participate in
/// (catch-up window before state transfer is required).
const INSTANCE_WINDOW: u64 = 8;

/// Quiet period for per-instance repair, measured in consensus events: when
/// a replica running adaptive α observes this many in-window consensus
/// messages for instances *other than* its delivery frontier while the
/// frontier itself stays silent, the frontier's traffic was almost
/// certainly lost and a targeted `InstanceFetch` round fires. Counting
/// events instead of time keeps the trigger a pure function of the message
/// schedule — deterministic under the simulator and free of extra timers on
/// metal.
const QUIET_EVENTS: u32 = 24;

/// Largest number of *extra* consecutive instances a single
/// [`SmrMsg::InstanceFetch`] can cover beyond its first one — the range
/// extension travels in the upper seven bits of the flag byte.
pub const MAX_FETCH_EXTRA: u8 = 127;

/// Packs an [`SmrMsg::InstanceFetch`] flag byte: bit 0 says the requester
/// already holds the first instance's proposed value; bits 1..7 carry how
/// many extra consecutive instances the fetch also covers. The legacy
/// single-instance encodings (0 and 1) round-trip unchanged.
pub fn pack_fetch(have_value: bool, extra: u8) -> u8 {
    (have_value as u8) | (extra.min(MAX_FETCH_EXTRA) << 1)
}

/// Splits an [`SmrMsg::InstanceFetch`] flag byte into
/// `(have_value, extra_instances)`.
pub fn unpack_fetch(flags: u8) -> (bool, u8) {
    (flags & 1 != 0, flags >> 1)
}

/// Wire messages exchanged by SMR replicas (clients speak
/// [`SmrMsg::Request`]/[`SmrMsg::Reply`]).
#[derive(Clone, Debug, PartialEq)]
pub enum SmrMsg {
    /// Client request (sent by clients to all replicas).
    Request(crate::types::Request),
    /// Consensus-instance traffic.
    Consensus(ConsensusMsg),
    /// Synchronization-phase traffic.
    Sync(SyncMsg),
    /// Reply to a client.
    Reply(crate::types::Reply),
    /// Runtime state transfer: a recovering replica asks a peer for every
    /// applied batch from `from_batch` onward (metal deployments; the
    /// simulated chain uses `ChainMsg::StateReq` instead).
    StateReq {
        /// First batch (consensus instance) the requester is missing.
        from_batch: u64,
    },
    /// Runtime state-transfer reply: an application snapshot (if one covers
    /// part of the gap) plus the logged batch suffix.
    StateRep {
        /// Batches summarized by `snapshot` (0 = no snapshot shipped).
        covered: u64,
        /// Serialized application state covering batches `1..=covered`.
        snapshot: Option<Vec<u8>>,
        /// Batch number of `batches[0]` (consecutive from there).
        first_batch: u64,
        /// Encoded request batches `first_batch..first_batch + len`.
        batches: Vec<Vec<u8>>,
        /// The sender's per-client dedup frontier, so requests inside the
        /// summarized prefix are rejected as duplicates after the install.
        frontier: Vec<(u64, u64)>,
        /// The sender's current regency, so a recovering replica that slept
        /// through leader changes rejoins at the right one.
        regency: u32,
        /// The quorum certificate for the shipped snapshot's checkpoint
        /// (required by the receiver when the snapshot runs ahead of its
        /// local state).
        cert: Option<crate::durability::CheckpointCert>,
    },
    /// A replica's signed share of a checkpoint certificate, gossiped after
    /// each local checkpoint; `quorum` shares matching on
    /// `(covered, state_root, tip)` assemble a
    /// [`CheckpointCert`](crate::durability::CheckpointCert).
    CkptShare {
        /// The signing replica.
        replica: ReplicaId,
        /// Batches the checkpoint summarizes.
        covered: u64,
        /// Chunked Merkle root of the application state at `covered`.
        state_root: [u8; 32],
        /// Batch chain hash after `covered`.
        tip: [u8; 32],
        /// Signature over [`ckpt_sign_payload`](crate::durability::ckpt_sign_payload).
        signature: Signature,
    },
    /// Per-instance repair request: the sender observed traffic for later
    /// instances but none for `instance` over a quiet period, and asks its
    /// peers for the missing messages — one round trip instead of a regency
    /// change. `have` is a packed flag byte (see [`pack_fetch`]): bit 0 is
    /// set when the requester already holds the first instance's proposed
    /// value (responders then omit the value-bearing reply), and bits 1..7
    /// extend the fetch over that many extra consecutive instances, so one
    /// request repairs a whole stretch of the window.
    InstanceFetch {
        /// The first stalled instance.
        instance: u64,
        /// Packed have-value flag and range extension ([`pack_fetch`]).
        have: u8,
    },
    /// Per-instance repair reply. If the responder has seen the decision,
    /// `decided` carries the value plus its quorum proof (the requester
    /// verifies and delivers directly). Otherwise `msgs` carries the
    /// responder's own PROPOSE/ValueReply/WRITE/ACCEPT for the instance —
    /// replays that pass the receiver's ordinary signature/leader checks
    /// unchanged, so a Byzantine responder cannot inject anything it could
    /// not already have sent.
    InstanceRep {
        /// The instance being repaired.
        instance: u64,
        /// Decided value and its decision proof, when known (shared
        /// handles: responders answer straight from their delivery and
        /// undelivered buffers without copying the batch bytes).
        decided: Option<(ValueBytes, Arc<DecisionProof>)>,
        /// The responder's own consensus messages for the instance.
        msgs: Vec<ConsensusMsg>,
    },
}

impl SmrMsg {
    /// Wire size in bytes (transport framing + canonical encoding), derived
    /// from the [`Encode`] output — the encoder is the single source of
    /// truth for the simulator's NIC model.
    pub fn wire_size(&self) -> usize {
        smartchain_codec::FRAME_BYTES + self.encoded_len()
    }
}

impl Encode for SmrMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SmrMsg::Request(r) => {
                0u8.encode(out);
                r.encode(out);
            }
            SmrMsg::Consensus(c) => {
                1u8.encode(out);
                c.encode(out);
            }
            SmrMsg::Sync(s) => {
                2u8.encode(out);
                s.encode(out);
            }
            SmrMsg::Reply(r) => {
                3u8.encode(out);
                r.encode(out);
            }
            SmrMsg::StateReq { from_batch } => {
                4u8.encode(out);
                from_batch.encode(out);
            }
            SmrMsg::StateRep {
                covered,
                snapshot,
                first_batch,
                batches,
                frontier,
                regency,
                cert,
            } => {
                5u8.encode(out);
                covered.encode(out);
                snapshot.encode(out);
                first_batch.encode(out);
                smartchain_codec::encode_seq(batches, out);
                smartchain_codec::encode_seq(frontier, out);
                regency.encode(out);
                cert.encode(out);
            }
            SmrMsg::CkptShare {
                replica,
                covered,
                state_root,
                tip,
                signature,
            } => {
                6u8.encode(out);
                (*replica as u64).encode(out);
                covered.encode(out);
                state_root.encode(out);
                tip.encode(out);
                signature.to_wire().encode(out);
            }
            SmrMsg::InstanceFetch { instance, have } => {
                7u8.encode(out);
                instance.encode(out);
                have.encode(out);
            }
            SmrMsg::InstanceRep {
                instance,
                decided,
                msgs,
            } => {
                8u8.encode(out);
                instance.encode(out);
                decided.encode(out);
                smartchain_codec::encode_seq(msgs, out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            SmrMsg::Request(r) => r.encoded_len(),
            SmrMsg::Consensus(c) => c.encoded_len(),
            SmrMsg::Sync(s) => s.encoded_len(),
            SmrMsg::Reply(r) => r.encoded_len(),
            SmrMsg::StateReq { from_batch } => from_batch.encoded_len(),
            SmrMsg::StateRep {
                covered,
                snapshot,
                first_batch,
                batches,
                frontier,
                regency,
                cert,
            } => {
                covered.encoded_len()
                    + snapshot.encoded_len()
                    + first_batch.encoded_len()
                    + smartchain_codec::seq_encoded_len(batches)
                    + smartchain_codec::seq_encoded_len(frontier)
                    + regency.encoded_len()
                    + cert.encoded_len()
            }
            SmrMsg::CkptShare { .. } => 8 + 8 + 32 + 32 + 65,
            SmrMsg::InstanceFetch { instance, have } => instance.encoded_len() + have.encoded_len(),
            SmrMsg::InstanceRep {
                instance,
                decided,
                msgs,
            } => {
                instance.encoded_len()
                    + decided.encoded_len()
                    + smartchain_codec::seq_encoded_len(msgs)
            }
        }
    }
}

impl Decode for SmrMsg {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(SmrMsg::Request(crate::types::Request::decode(input)?)),
            1 => Ok(SmrMsg::Consensus(ConsensusMsg::decode(input)?)),
            2 => Ok(SmrMsg::Sync(SyncMsg::decode(input)?)),
            3 => Ok(SmrMsg::Reply(crate::types::Reply::decode(input)?)),
            4 => Ok(SmrMsg::StateReq {
                from_batch: u64::decode(input)?,
            }),
            5 => Ok(SmrMsg::StateRep {
                covered: u64::decode(input)?,
                snapshot: Option::<Vec<u8>>::decode(input)?,
                first_batch: u64::decode(input)?,
                batches: smartchain_codec::decode_seq(input)?,
                frontier: smartchain_codec::decode_seq(input)?,
                regency: u32::decode(input)?,
                cert: Option::<crate::durability::CheckpointCert>::decode(input)?,
            }),
            6 => Ok(SmrMsg::CkptShare {
                replica: u64::decode(input)? as ReplicaId,
                covered: u64::decode(input)?,
                state_root: <[u8; 32]>::decode(input)?,
                tip: <[u8; 32]>::decode(input)?,
                signature: Signature::from_wire(&<[u8; 65]>::decode(input)?),
            }),
            7 => Ok(SmrMsg::InstanceFetch {
                instance: u64::decode(input)?,
                have: u8::decode(input)?,
            }),
            8 => Ok(SmrMsg::InstanceRep {
                instance: u64::decode(input)?,
                decided: Option::<(ValueBytes, Arc<DecisionProof>)>::decode(input)?,
                msgs: smartchain_codec::decode_seq(input)?,
            }),
            d => Err(DecodeError::BadDiscriminant(d as u32)),
        }
    }
}

/// A network message type that can carry SMR traffic — lets generic
/// components (e.g. the closed-loop client actor) work over richer message
/// enums such as SmartChain's.
pub trait SmrEnvelope: Clone + 'static {
    /// Wraps an SMR message.
    fn from_smr(msg: SmrMsg) -> Self;
    /// Views this message as a client reply, if it is one.
    fn as_reply(&self) -> Option<&crate::types::Reply>;
    /// Wire size in bytes.
    fn envelope_size(&self) -> usize;
}

impl SmrEnvelope for SmrMsg {
    fn from_smr(msg: SmrMsg) -> Self {
        msg
    }
    fn as_reply(&self) -> Option<&crate::types::Reply> {
        match self {
            SmrMsg::Reply(r) => Some(r),
            _ => None,
        }
    }
    fn envelope_size(&self) -> usize {
        self.wire_size()
    }
}

/// A totally-ordered, decided batch handed to the upper layer.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderedBatch {
    /// Consensus instance that decided this batch.
    pub instance: u64,
    /// Epoch of the decision.
    pub epoch: u32,
    /// The decoded requests in proposal order, with already-delivered
    /// duplicates stripped — what the application executes.
    pub requests: Vec<Request>,
    /// The raw decided value (the encoded proposal, duplicates and all):
    /// `sha256(value)` is exactly the proof's `value_hash`, so a durable log
    /// that stores this instead of the stripped request list stays bound to
    /// the quorum-signed decision — what the runtime's digest-checked state
    /// transfer verifies. A shared, hash-memoized handle: the delivery,
    /// the durable log, the reply-cache source, and repair replies all hold
    /// the same allocation, and its digest is computed once.
    pub value: ValueBytes,
    /// The decision proof (quorum of signed ACCEPTs), shared with the
    /// consensus instance and any repair replies that re-ship it.
    pub proof: Arc<DecisionProof>,
}

/// Outputs of the ordering core.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreOutput {
    /// Broadcast to all replicas in the view.
    Broadcast(SmrMsg),
    /// Point-to-point send.
    Send(ReplicaId, SmrMsg),
    /// In-order delivery of a decided batch.
    Deliver(OrderedBatch),
    /// The replica fell more than the window behind; the embedding must run
    /// state transfer up to (at least) the given instance.
    NeedStateTransfer {
        /// Some replica has decided at least this instance.
        observed_instance: u64,
    },
}

/// Bounds for the adaptive pipeline window (see
/// [`OrderingConfig::alpha_adaptive`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlphaBounds {
    /// Floor of the effective window (≥ 1).
    pub min: u64,
    /// Ceiling of the effective window (≤ 255; also sizes the catch-up
    /// window and the view-change lock vectors).
    pub max: u64,
}

/// Configuration of the ordering core.
#[derive(Clone, Copy, Debug)]
pub struct OrderingConfig {
    /// Maximum requests per proposed batch (the paper/SmartChain use 512).
    pub max_batch: usize,
    /// Maximum consensus instances the leader keeps in flight concurrently
    /// (the pipeline width α). 1 preserves the seed's strictly sequential
    /// ordering core; larger values overlap ORDER of instance `i+1` with
    /// EXECUTE/PERSIST of instance `i`. Clamped to 255 at construction —
    /// the STOPDATA/SYNC vectors carry a one-byte count on the wire.
    /// Ignored while `alpha_adaptive` is set.
    pub alpha: u64,
    /// Opt-in AIMD window: when set, the leader's effective α starts at
    /// `min`, grows by one on every cleanly decided instance, and halves
    /// (floored at `min`) whenever loss is observed — a repair fetch fires
    /// or the progress timer expires. The window is a pure function of
    /// observed protocol events, so identically-seeded runs remain
    /// bit-for-bit reproducible. `None` (the default) keeps the fixed-α
    /// behavior untouched.
    pub alpha_adaptive: Option<AlphaBounds>,
    /// Opt-in joint α×batch adaptation: when set (and `alpha_adaptive` is
    /// on), the effective batch cap scales inversely with the AIMD window —
    /// `max_batch × min_α / current_α`, floored at 1 — so the total work in
    /// flight (α × batch) stays near `min_α × max_batch`. A wide window
    /// fills the pipeline with more, slimmer batches (lower per-slot
    /// latency); a loss-halved window fattens batches to hold throughput.
    /// Like the window itself this is a pure function of observed protocol
    /// events, so identically-seeded runs stay bit-for-bit reproducible.
    /// Ignored in fixed-α mode.
    pub batch_adaptive: bool,
    /// How many consecutive instances one repair round may cover (clamped
    /// to `1..=MAX_FETCH_EXTRA + 1` at construction): the fetch for a
    /// stalled frontier extends over up to `repair_range - 1` additional
    /// not-yet-decided instances, and responders answer each from the same
    /// shared buffers. 1 (the default) preserves single-instance repair
    /// bit-for-bit.
    pub repair_range: u8,
}

impl Default for OrderingConfig {
    fn default() -> Self {
        OrderingConfig {
            max_batch: 512,
            alpha: 1,
            alpha_adaptive: None,
            batch_adaptive: false,
            repair_range: 1,
        }
    }
}

impl OrderingConfig {
    /// The largest window this configuration can ever run at — sizes the
    /// catch-up window, the synchronizer's lock vectors, and the simulator's
    /// open-instance pump regardless of where the adaptive window currently
    /// sits.
    pub fn max_alpha(&self) -> u64 {
        match self.alpha_adaptive {
            Some(bounds) => bounds.max,
            None => self.alpha,
        }
    }
}

/// Repair/adaptation counters, maintained by every core (fixed-α cores
/// never *send* fetches, but they answer them and count regency changes).
/// All counters are cumulative since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderingStats {
    /// InstanceFetch requests this replica broadcast.
    pub fetches_sent: u64,
    /// InstanceFetch requests this replica answered with an InstanceRep.
    pub fetches_answered: u64,
    /// Instances delivered after this replica fetched them.
    pub repaired_instances: u64,
    /// The effective window right now (equals `alpha` in fixed mode).
    pub alpha_current: u64,
    /// Smallest effective window observed so far.
    pub alpha_min_seen: u64,
    /// Largest effective window observed so far.
    pub alpha_max_seen: u64,
    /// Regencies installed (leader changes completed locally).
    pub regency_changes: u64,
}

/// The per-replica ordering state machine.
pub struct OrderingCore {
    me: ReplicaId,
    view: View,
    secret: SecretKey,
    config: OrderingConfig,
    synchronizer: Synchronizer,
    instances: BTreeMap<u64, Instance>,
    /// Highest instance delivered to the upper layer.
    last_delivered: u64,
    /// Decisions that arrived out of order, waiting for their predecessors.
    undelivered: BTreeMap<u64, Decision>,
    /// Requests admitted and not yet delivered.
    pending: VecDeque<Request>,
    /// Ids of live entries in `pending` (O(1) dedup; removal is lazy —
    /// deque entries whose id left this set are dropped when encountered).
    pending_ids: std::collections::HashSet<(u64, u64)>,
    /// Instance/epoch pairs we already proposed in (leader bookkeeping).
    proposed: HashMap<u64, u32>,
    /// Requests claimed by one of our in-flight proposals, per instance —
    /// the next slot's batch must not re-propose them (only populated at
    /// α > 1; with one slot there is never a concurrent claim).
    claimed: HashMap<u64, Vec<(u64, u64)>>,
    /// Union of the id sets in `claimed` (O(1) batch filtering).
    claimed_ids: HashSet<(u64, u64)>,
    /// Leading entries of `pending` known to be dead or claimed — the next
    /// `take_batch` starts scanning here instead of rescanning the prefix
    /// (rewound whenever a claim is released; only ever advanced at α > 1).
    pending_cursor: usize,
    /// Where the last `take_batch` scan stopped; `claim` promotes it to
    /// `pending_cursor` once the scanned prefix is actually claimed.
    take_scan_end: usize,
    /// Per-client highest delivered sequence number (dedup).
    delivered_seq: HashMap<u64, u64>,
    /// Effective pipeline width right now (AIMD state; equals
    /// `config.alpha` in fixed mode).
    current_alpha: u64,
    /// Consensus events observed for in-window instances *other than* the
    /// delivery frontier since the frontier last moved or spoke — the
    /// deterministic quiet clock behind per-instance repair.
    frontier_quiet: u32,
    /// The frontier instance `frontier_quiet` is counting for (resets the
    /// count when delivery advances).
    frontier_watch: u64,
    /// Instances this replica sent an InstanceFetch for and has not yet
    /// delivered (their delivery counts as a repair, not clean progress).
    fetched: HashSet<u64>,
    /// Frontier instance already given one repair round after a progress
    /// timeout — the next timeout for the same frontier escalates to a
    /// leader change.
    timeout_repair: Option<u64>,
    /// Repair/adaptation counters.
    stats: OrderingStats,
    /// Optional shared signature-verification pool: when set, repair-reply
    /// admission checks the replayed WRITE/ACCEPT signatures as one batch
    /// on the pool's workers instead of one by one inline.
    verify_pool: Option<Arc<VerifyPool>>,
}

impl std::fmt::Debug for OrderingCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderingCore")
            .field("me", &self.me)
            .field("last_delivered", &self.last_delivered)
            .field("pending", &self.pending.len())
            .field("regency", &self.synchronizer.regency())
            .finish()
    }
}

impl OrderingCore {
    /// Creates the core for replica `me` in `view`, using `secret` as this
    /// replica's consensus key. `next_instance` is 1 + the highest instance
    /// already applied (1 for a fresh start; decided instances start at 1 so
    /// that block numbers align with the genesis block being 0).
    pub fn new(
        me: ReplicaId,
        view: View,
        secret: SecretKey,
        config: OrderingConfig,
        last_applied: u64,
    ) -> OrderingCore {
        let mut config = config;
        // The view-change lock/adoption vectors carry a one-byte count.
        config.alpha = config.alpha.clamp(1, u8::MAX as u64);
        if let Some(bounds) = &mut config.alpha_adaptive {
            bounds.min = bounds.min.clamp(1, u8::MAX as u64);
            bounds.max = bounds.max.clamp(bounds.min, u8::MAX as u64);
        }
        // The fetch range extension travels in seven bits of the flag byte.
        config.repair_range = config.repair_range.clamp(1, MAX_FETCH_EXTRA + 1);
        let start_alpha = match config.alpha_adaptive {
            Some(bounds) => bounds.min,
            None => config.alpha,
        };
        OrderingCore {
            me,
            synchronizer: Synchronizer::new(me, view.clone(), config.max_alpha()),
            view,
            secret,
            config,
            instances: BTreeMap::new(),
            last_delivered: last_applied,
            undelivered: BTreeMap::new(),
            pending: VecDeque::new(),
            pending_ids: std::collections::HashSet::new(),
            proposed: HashMap::new(),
            claimed: HashMap::new(),
            claimed_ids: HashSet::new(),
            pending_cursor: 0,
            take_scan_end: 0,
            delivered_seq: HashMap::new(),
            current_alpha: start_alpha,
            frontier_quiet: 0,
            frontier_watch: last_applied + 1,
            fetched: HashSet::new(),
            timeout_repair: None,
            stats: OrderingStats {
                alpha_current: start_alpha,
                alpha_min_seen: start_alpha,
                alpha_max_seen: start_alpha,
                ..OrderingStats::default()
            },
            verify_pool: None,
        }
    }

    /// Catch-up window: how far ahead of `last_delivered` this replica will
    /// participate (at least the pipeline width, so a leader at full α never
    /// pushes followers into state transfer).
    fn window(&self) -> u64 {
        INSTANCE_WINDOW.max(self.config.max_alpha().max(1))
    }

    /// The pipeline width in force right now: the AIMD window when adaptive
    /// α is enabled, the configured constant otherwise.
    fn effective_alpha(&self) -> u64 {
        if self.config.alpha_adaptive.is_some() {
            self.current_alpha
        } else {
            self.config.alpha.max(1)
        }
    }

    /// The batch cap in force right now: joint adaptation (opt-in) scales
    /// it inversely with the AIMD window so α × batch stays near
    /// `min_α × max_batch`; otherwise the configured constant.
    fn effective_max_batch(&self) -> usize {
        match self.config.alpha_adaptive {
            Some(bounds) if self.config.batch_adaptive => {
                let alpha = self.effective_alpha().max(1) as usize;
                (self.config.max_batch * bounds.min as usize / alpha).max(1)
            }
            _ => self.config.max_batch,
        }
    }

    /// Additive increase: one more slot per cleanly decided instance, capped
    /// at the configured ceiling. No-op in fixed mode.
    fn grow_alpha(&mut self) {
        if let Some(bounds) = self.config.alpha_adaptive {
            self.current_alpha = (self.current_alpha + 1).min(bounds.max);
            self.note_alpha();
        }
    }

    /// Multiplicative decrease: halve the window (floored at the configured
    /// minimum) when loss is observed. No-op in fixed mode.
    fn halve_alpha(&mut self) {
        if let Some(bounds) = self.config.alpha_adaptive {
            self.current_alpha = (self.current_alpha / 2).max(bounds.min);
            self.note_alpha();
        }
    }

    fn note_alpha(&mut self) {
        self.stats.alpha_current = self.current_alpha;
        self.stats.alpha_min_seen = self.stats.alpha_min_seen.min(self.current_alpha);
        self.stats.alpha_max_seen = self.stats.alpha_max_seen.max(self.current_alpha);
    }

    /// Repair/adaptation counters (cumulative).
    pub fn stats(&self) -> OrderingStats {
        let mut stats = self.stats;
        stats.alpha_current = self.effective_alpha();
        stats
    }

    /// Attaches a shared signature-verification pool; repair-reply
    /// admission then checks replayed signatures as one batch on the
    /// pool's workers. Verdicts are identical with or without a pool — it
    /// only changes where the work runs.
    pub fn set_verify_pool(&mut self, pool: Arc<VerifyPool>) {
        self.verify_pool = Some(pool);
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Current regency (for timeout bookkeeping by the embedding).
    pub fn regency(&self) -> u32 {
        self.synchronizer.regency()
    }

    /// Leader of the current regency.
    pub fn leader(&self) -> ReplicaId {
        self.synchronizer.current_leader()
    }

    /// True when this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.me
    }

    /// Highest instance delivered so far.
    pub fn last_delivered(&self) -> u64 {
        self.last_delivered
    }

    /// Number of admitted, undelivered requests.
    pub fn pending_len(&self) -> usize {
        self.pending_ids.len()
    }

    /// Replaces the view and resets consensus machinery (used after
    /// reconfiguration installs a new membership, per paper §V-D). Open
    /// instances are dropped — reconfigurations happen at instance
    /// boundaries, right after a delivery.
    pub fn install_view(&mut self, view: View, secret: SecretKey) {
        self.view = view.clone();
        self.secret = secret;
        self.synchronizer = Synchronizer::new(self.me, view, self.config.max_alpha());
        self.instances = BTreeMap::new();
        self.proposed.clear();
        self.claimed.clear();
        self.claimed_ids.clear();
        self.pending_cursor = 0;
        self.take_scan_end = 0;
    }

    /// Signs `payload` with this replica's consensus secret key — used by
    /// the embedding to produce checkpoint-certificate shares, so the
    /// certificate verifies against the same view keys as decision proofs.
    pub fn sign(&self, payload: &[u8]) -> Signature {
        self.secret.sign(payload)
    }

    /// Records that `(client, seq)` was delivered in replayed history —
    /// state transfer MUST call this for every replayed request, or the
    /// recovering replica's duplicate filter diverges from its peers' and
    /// client retransmissions fork the delivered sequence.
    pub fn note_delivered(&mut self, client: u64, seq: u64) {
        self.delivered_seq
            .entry(client)
            .and_modify(|s| *s = (*s).max(seq))
            .or_insert(seq);
        self.pending_ids.remove(&(client, seq));
    }

    /// Highest delivered sequence number for `client`, if any — the read
    /// side of the dedup frontier, used by the embedding to answer
    /// retransmissions of delivered requests from its reply cache.
    pub fn delivered_up_to(&self, client: u64) -> Option<u64> {
        self.delivered_seq.get(&client).copied()
    }

    /// The full per-client dedup frontier, sorted by client id. Shipped with
    /// checkpoint snapshots so a snapshot-anchored joiner's core rejects
    /// retransmissions of requests inside the summarized prefix.
    pub fn delivered_frontier(&self) -> Vec<(u64, u64)> {
        let mut frontier: Vec<(u64, u64)> =
            self.delivered_seq.iter().map(|(&c, &s)| (c, s)).collect();
        frontier.sort_unstable();
        frontier
    }

    /// Fast-forwards after state transfer: everything up to `instance` is
    /// already applied via a snapshot/log replay.
    pub fn fast_forward(&mut self, instance: u64) {
        if instance <= self.last_delivered {
            return;
        }
        self.last_delivered = instance;
        self.undelivered.retain(|&i, _| i > instance);
        self.instances.retain(|&i, _| i > instance);
        self.fetched.retain(|&i| i > instance);
        self.frontier_watch = instance + 1;
        self.frontier_quiet = 0;
        self.timeout_repair = None;
        let stale: Vec<u64> = self
            .claimed
            .keys()
            .filter(|&&i| i <= instance)
            .copied()
            .collect();
        for slot in stale {
            self.release_claim(slot);
        }
    }

    /// Admits a request for ordering. The embedding is responsible for
    /// signature policy (verify before admitting, or charge pool time).
    /// Returns outputs (a proposal may start immediately).
    pub fn submit(&mut self, request: Request) -> Vec<CoreOutput> {
        // Drop already-delivered or already-pending duplicates.
        if self
            .delivered_seq
            .get(&request.client)
            .is_some_and(|&s| request.seq <= s)
        {
            return Vec::new();
        }
        if !self.pending_ids.insert(request.id()) {
            return Vec::new();
        }
        self.pending.push_back(request);
        self.try_propose()
    }

    /// Called by the embedding when its progress timer fires and nothing was
    /// delivered since the timer was armed: starts a leader change — except
    /// under adaptive α, where the first timeout for a stalled frontier
    /// tries one cheap per-instance repair round and only a second timeout
    /// for the *same* frontier escalates to the regency change.
    pub fn on_progress_timeout(&mut self) -> Vec<CoreOutput> {
        if self.pending_ids.is_empty() && self.undelivered.is_empty() {
            return Vec::new();
        }
        if self.config.alpha_adaptive.is_some() {
            let frontier = self.last_delivered + 1;
            if self.timeout_repair != Some(frontier) {
                self.timeout_repair = Some(frontier);
                self.halve_alpha();
                return self.repair_round(frontier);
            }
            self.timeout_repair = None;
        }
        let actions = self.synchronizer.request_change();
        self.apply_sync_actions(actions)
    }

    /// Handles a message from another replica.
    pub fn on_message(&mut self, from: ReplicaId, msg: SmrMsg) -> Vec<CoreOutput> {
        match msg {
            SmrMsg::Request(req) => self.submit(req),
            SmrMsg::Consensus(cmsg) => self.on_consensus(from, cmsg),
            SmrMsg::Sync(smsg) => {
                let actions = self.synchronizer.on_message(from, smsg);
                self.apply_sync_actions(actions)
            }
            SmrMsg::Reply(_) => Vec::new(), // replicas ignore replies
            SmrMsg::InstanceFetch { instance, have } => {
                self.on_instance_fetch(from, instance, have)
            }
            SmrMsg::InstanceRep {
                instance,
                decided,
                msgs,
            } => self.on_instance_rep(from, instance, decided, msgs),
            // State transfer and checkpoint certification are the
            // embedding's job (it owns the log); the core ignores the
            // messages if they ever reach it.
            SmrMsg::StateReq { .. } | SmrMsg::StateRep { .. } | SmrMsg::CkptShare { .. } => {
                Vec::new()
            }
        }
    }

    /// Called by an embedding whose transport re-established the link to
    /// `peer` (metal deployments on real sockets): messages queued for that
    /// peer may have died with the torn connection, so protocol state the
    /// receiver cannot regenerate on its own is re-sent — our STOP vote
    /// and, if `peer` leads a pending regency, our STOPDATA, plus our own
    /// WRITE/ACCEPT (and value) for every still-open instance so the
    /// reconnecting replica rejoins the pipeline window without waiting for
    /// a fetch round or state transfer.
    pub fn on_peer_reconnect(&mut self, peer: ReplicaId) -> Vec<CoreOutput> {
        if peer == self.me || peer >= self.view.members.len() {
            return Vec::new();
        }
        let mut outputs = Vec::new();
        let sent = self.synchronizer.sent_stop_for();
        if sent > self.synchronizer.regency() {
            outputs.push(CoreOutput::Send(
                peer,
                SmrMsg::Sync(SyncMsg::Stop { regency: sent }),
            ));
        }
        if let Some(regency) = self.synchronizer.stopped_regency() {
            if self.synchronizer.leader_of(regency) == peer {
                let locked = self.collect_locked();
                let msg = self.synchronizer.make_stopdata(
                    regency,
                    StopData {
                        last_decided: self.last_delivered,
                        locked,
                    },
                );
                outputs.push(CoreOutput::Send(peer, SmrMsg::Sync(msg)));
            }
        }
        // In-flight consensus traffic: whatever we already said about the
        // open instances, said again point-to-point (with the value, so a
        // peer that missed the PROPOSE can still tally our WRITE).
        for (_, inst) in self.instances.range(self.last_delivered + 1..) {
            if inst.is_decided() {
                continue;
            }
            for m in inst.own_messages(true) {
                outputs.push(CoreOutput::Send(peer, SmrMsg::Consensus(m)));
            }
        }
        outputs
    }

    /// Adopts a regency learned out-of-band (a state-transfer shipper's
    /// report, metal deployments only): jumps the synchronizer forward and
    /// moves every open instance to the new epoch so current-regency
    /// traffic is no longer dropped. A replica that slept through a leader
    /// change cannot reconstruct the STOP/STOPDATA exchange it missed; this
    /// is liveness-only state (epoch quorums still guard safety). No-op
    /// unless `regency` is ahead of ours.
    pub fn adopt_regency(&mut self, regency: u32) {
        if regency <= self.synchronizer.regency() {
            return;
        }
        self.synchronizer.fast_forward_regency(regency);
        let leader = self.synchronizer.current_leader();
        let open: Vec<u64> = self
            .instances
            .range(self.last_delivered + 1..)
            .map(|(&i, _)| i)
            .collect();
        for i in open {
            if let Some(inst) = self.instances.get_mut(&i) {
                inst.advance_epoch(regency, leader);
            }
        }
    }

    /// When in-order delivery is stalled on a hole — decisions are buffered
    /// for later instances but `last_delivered + 1` never decided here —
    /// returns the highest buffered instance. A replica that restarted
    /// within the catch-up window lands in exactly this state (its peers
    /// decided the gap while it was down and will not re-run consensus for
    /// it); the embedding should fetch the gap via state transfer.
    pub fn stalled_behind(&self) -> Option<u64> {
        self.undelivered.keys().next_back().copied()
    }

    fn on_consensus(&mut self, from: ReplicaId, msg: ConsensusMsg) -> Vec<CoreOutput> {
        self.on_consensus_inner(from, msg, true)
    }

    /// `verify_sigs = false` skips the per-message signature check — only
    /// for repair-reply replays whose signatures were already batch-verified
    /// up front ([`on_instance_rep`](Self::on_instance_rep)).
    fn on_consensus_inner(
        &mut self,
        from: ReplicaId,
        msg: ConsensusMsg,
        verify_sigs: bool,
    ) -> Vec<CoreOutput> {
        let instance_id = msg.instance();
        if instance_id <= self.last_delivered {
            // Late traffic for an already-delivered instance: serve fetches
            // (a lagging peer may need the value), drop the rest.
            if let (ConsensusMsg::FetchValue { .. }, Some(inst)) =
                (&msg, self.instances.get_mut(&instance_id))
            {
                let (outs, _) = inst.on_message(from, msg);
                return outs.into_iter().map(Self::net).collect();
            }
            return Vec::new();
        }
        if instance_id > self.last_delivered + self.window() {
            return vec![CoreOutput::NeedStateTransfer {
                observed_instance: instance_id,
            }];
        }
        let mut outputs = Vec::new();
        if self.config.alpha_adaptive.is_some() {
            outputs.extend(self.tick_quiet(instance_id));
        }
        let inst = self.instance_entry(instance_id);
        let (outs, decision) = if verify_sigs {
            inst.on_message(from, msg)
        } else {
            inst.on_message_preverified(from, msg)
        };
        outputs.extend(outs.into_iter().map(Self::net));
        if let Some(d) = decision {
            outputs.extend(self.on_decision(d));
        }
        outputs
    }

    /// The deterministic quiet clock behind per-instance repair: every
    /// in-window consensus event for an instance other than the delivery
    /// frontier ticks the counter; an event for the frontier (or the
    /// frontier moving) resets it. [`QUIET_EVENTS`] ticks of silence mean
    /// the frontier's traffic was lost — halve the window and fire a
    /// targeted fetch round. Adaptive mode only.
    fn tick_quiet(&mut self, instance_id: u64) -> Vec<CoreOutput> {
        let frontier = self.last_delivered + 1;
        if self.frontier_watch != frontier {
            self.frontier_watch = frontier;
            self.frontier_quiet = 0;
        }
        if instance_id == frontier {
            self.frontier_quiet = 0;
            return Vec::new();
        }
        self.frontier_quiet += 1;
        if self.frontier_quiet < QUIET_EVENTS {
            return Vec::new();
        }
        self.frontier_quiet = 0;
        self.halve_alpha();
        self.repair_round(frontier)
    }

    /// Broadcasts an `InstanceFetch` for `frontier` — extended over up to
    /// `repair_range - 1` further consecutive undecided instances — plus,
    /// when this replica leads the instance, a re-broadcast of its own
    /// PROPOSE, so a lost proposal heals even if no peer got it either.
    fn repair_round(&mut self, frontier: u64) -> Vec<CoreOutput> {
        self.stats.fetches_sent += 1;
        let have = self
            .instances
            .get(&frontier)
            .is_some_and(Instance::has_value);
        // Cover later instances still missing here; anything already
        // decided locally (delivered or buffered) needs no repair.
        let mut extra = 0u8;
        let window_end = self.last_delivered + self.window();
        while u64::from(extra) + 1 < u64::from(self.config.repair_range) {
            let candidate = frontier + 1 + u64::from(extra);
            if candidate > window_end
                || self.undelivered.contains_key(&candidate)
                || self
                    .instances
                    .get(&candidate)
                    .is_some_and(Instance::is_decided)
            {
                break;
            }
            extra += 1;
        }
        for i in frontier..=frontier + u64::from(extra) {
            self.fetched.insert(i);
        }
        let mut outputs = vec![CoreOutput::Broadcast(SmrMsg::InstanceFetch {
            instance: frontier,
            have: pack_fetch(have, extra),
        })];
        if let Some(inst) = self.instances.get(&frontier) {
            if inst.leader() == self.me {
                for m in inst.own_messages(false) {
                    outputs.push(CoreOutput::Broadcast(SmrMsg::Consensus(m)));
                }
            }
        }
        outputs
    }

    /// Answers a peer's repair request: for every instance in the fetched
    /// range, ship the decision plus its quorum proof when we have it
    /// (delivered-tail or undelivered buffer) — cloning only the shared
    /// handles, never the batch bytes — otherwise replay our own message
    /// set for the instance. Responding is unconditional — fixed-α replicas
    /// answer too; they just never *ask*.
    fn on_instance_fetch(&mut self, from: ReplicaId, first: u64, flags: u8) -> Vec<CoreOutput> {
        if from == self.me || from >= self.view.members.len() {
            return Vec::new();
        }
        let (requester_has_value, extra) = unpack_fetch(flags);
        let mut outputs = Vec::new();
        for instance in first..=first.saturating_add(u64::from(extra)) {
            let decided = self
                .instances
                .get(&instance)
                .and_then(Instance::decision)
                .map(|d| (d.value.clone(), d.proof.clone()))
                .or_else(|| {
                    self.undelivered
                        .get(&instance)
                        .map(|d| (d.value.clone(), d.proof.clone()))
                });
            if let Some((value, proof)) = decided {
                self.stats.fetches_answered += 1;
                outputs.push(CoreOutput::Send(
                    from,
                    SmrMsg::InstanceRep {
                        instance,
                        decided: Some((value, proof)),
                        msgs: Vec::new(),
                    },
                ));
                continue;
            }
            // The have-value hint only ever describes the first instance.
            let ship_value = !(requester_has_value && instance == first);
            let msgs = self
                .instances
                .get(&instance)
                .map(|inst| inst.own_messages(ship_value))
                .unwrap_or_default();
            if msgs.is_empty() {
                continue;
            }
            self.stats.fetches_answered += 1;
            outputs.push(CoreOutput::Send(
                from,
                SmrMsg::InstanceRep {
                    instance,
                    decided: None,
                    msgs,
                },
            ));
        }
        outputs
    }

    /// Applies a repair reply. A decided payload must carry a proof that (a)
    /// names this instance, (b) binds to the shipped value by hash, and (c)
    /// verifies against the view's quorum — a Byzantine responder cannot
    /// forge any of the three. Undecided payloads replay the responder's
    /// own WRITE/ACCEPTs: their signatures are checked up front as one
    /// batch (on the shared verify pool when attached, inline otherwise),
    /// failures are dropped, and survivors flow through the ordinary
    /// consensus path with only the now-redundant per-message signature
    /// check skipped — the leader/epoch/membership checks still apply
    /// unchanged.
    fn on_instance_rep(
        &mut self,
        from: ReplicaId,
        instance: u64,
        decided: Option<(ValueBytes, Arc<DecisionProof>)>,
        msgs: Vec<ConsensusMsg>,
    ) -> Vec<CoreOutput> {
        if from == self.me || from >= self.view.members.len() {
            return Vec::new();
        }
        if instance <= self.last_delivered || instance > self.last_delivered + self.window() {
            return Vec::new();
        }
        if let Some((value, proof)) = decided {
            if proof.instance != instance
                || value.hash() != proof.value_hash
                || !proof.verify(&self.view)
            {
                return Vec::new();
            }
            if self.undelivered.contains_key(&instance)
                || self
                    .instances
                    .get(&instance)
                    .is_some_and(Instance::is_decided)
            {
                return Vec::new();
            }
            let epoch = proof.epoch;
            return self.on_decision(Decision {
                instance,
                epoch,
                value,
                proof,
            });
        }
        // Replayed messages are the responder's own, so every signed one
        // must verify against the responder's key; check them as one batch.
        let relevant: Vec<ConsensusMsg> = msgs
            .into_iter()
            .filter(|m| m.instance() == instance)
            .collect();
        let public = self.view.members[from];
        let checks: Vec<_> = relevant
            .iter()
            .filter_map(|m| m.sign_check().map(|(payload, sig)| (public, payload, *sig)))
            .collect();
        let verdicts = match &self.verify_pool {
            Some(pool) => pool.verify_batch(&checks),
            None => verify_batch_sequential(&checks),
        };
        let mut outputs = Vec::new();
        let mut next_verdict = 0;
        for m in relevant {
            let preverified = if m.sign_check().is_some() {
                let ok = verdicts[next_verdict];
                next_verdict += 1;
                if !ok {
                    continue;
                }
                true
            } else {
                false
            };
            outputs.extend(self.on_consensus_inner(from, m, !preverified));
        }
        outputs
    }

    fn instance_entry(&mut self, id: u64) -> &mut Instance {
        let me = self.me;
        let view = self.view.clone();
        let secret = self.secret.clone();
        let regency = self.synchronizer.regency();
        let leader = self.synchronizer.current_leader();
        self.instances
            .entry(id)
            .or_insert_with(|| Instance::new(id, me, view, secret, leader, regency))
    }

    fn on_decision(&mut self, decision: Decision) -> Vec<CoreOutput> {
        self.undelivered.insert(decision.instance, decision);
        let mut outputs = Vec::new();
        // Release contiguous decisions in order.
        while let Some(d) = self.undelivered.remove(&(self.last_delivered + 1)) {
            self.last_delivered = d.instance;
            self.release_claim(d.instance);
            // AIMD bookkeeping: a fetched instance delivering is a repair
            // (the halving already happened when the fetch fired); anything
            // else is clean progress and grows the window. Delivery also
            // restarts the quiet clock and the timeout-repair ratchet.
            if self.fetched.remove(&d.instance) {
                self.stats.repaired_instances += 1;
            } else {
                self.grow_alpha();
            }
            self.frontier_watch = self.last_delivered + 1;
            self.frontier_quiet = 0;
            self.timeout_repair = None;
            // A malformed decided batch delivers empty.
            let requests = decode_batch(&d.value).unwrap_or_default();
            // Dedup against already-delivered requests and drop them from
            // our own pending pool.
            let mut fresh = Vec::with_capacity(requests.len());
            for req in requests {
                let seen = self
                    .delivered_seq
                    .get(&req.client)
                    .is_some_and(|&s| req.seq <= s);
                self.pending_ids.remove(&req.id());
                if !seen {
                    self.delivered_seq
                        .entry(req.client)
                        .and_modify(|s| *s = (*s).max(req.seq))
                        .or_insert(req.seq);
                    fresh.push(req);
                }
            }
            outputs.push(CoreOutput::Deliver(OrderedBatch {
                instance: d.instance,
                epoch: d.epoch,
                requests: fresh,
                value: d.value.clone(),
                proof: d.proof.clone(),
            }));
        }
        // Prune old instances (keep a tail to serve FetchValue) and stale
        // leader bookkeeping for delivered slots.
        let keep_from = self.last_delivered.saturating_sub(self.window());
        self.instances.retain(|&i, _| i >= keep_from);
        self.proposed.retain(|&i, _| i > self.last_delivered);
        self.fetched.retain(|&i| i > self.last_delivered);
        outputs.extend(self.try_propose());
        outputs
    }

    /// Starts consensus instances while this replica leads, work is queued,
    /// and the pipeline window (α) has free slots.
    pub fn try_propose(&mut self) -> Vec<CoreOutput> {
        if !self.is_leader() || self.synchronizer.is_stopped() || self.pending_ids.is_empty() {
            return Vec::new();
        }
        let mut outputs = Vec::new();
        loop {
            let regency = self.synchronizer.regency();
            let Some(slot) = self.next_open_slot(regency) else {
                break;
            };
            let batch = self.take_batch();
            if batch.is_empty() {
                break;
            }
            let value = ValueBytes::from(encode_batch(&batch));
            self.claim(slot, &batch);
            outputs.extend(self.propose_at(slot, regency, value));
            if !self.is_leader() || self.synchronizer.is_stopped() || self.pending_ids.is_empty() {
                break;
            }
        }
        outputs
    }

    /// The lowest window slot with no live proposal of ours and no decision.
    fn next_open_slot(&self, regency: u32) -> Option<u64> {
        let first = self.last_delivered + 1;
        let last = self.last_delivered + self.effective_alpha();
        (first..=last).find(|slot| {
            self.proposed.get(slot).is_none_or(|&e| e < regency)
                && !self.instances.get(slot).is_some_and(Instance::is_decided)
        })
    }

    /// Drops stale deque entries (ids removed on delivery) lazily, then
    /// takes up to a batch of live, unclaimed requests (they stay queued
    /// until their own delivery removes them). The scan starts at
    /// `pending_cursor` — every earlier entry is already dead or claimed —
    /// so filling α slots costs O(α × batch), not O(α × pending).
    fn take_batch(&mut self) -> Vec<Request> {
        while let Some(front) = self.pending.front() {
            if self.pending_ids.contains(&front.id()) {
                break;
            }
            self.pending.pop_front();
            self.pending_cursor = self.pending_cursor.saturating_sub(1);
        }
        let limit = self.effective_max_batch();
        let mut batch = Vec::new();
        let mut scanned = self.pending_cursor;
        for r in self.pending.iter().skip(self.pending_cursor) {
            if batch.len() >= limit {
                break;
            }
            scanned += 1;
            if self.pending_ids.contains(&r.id()) && !self.claimed_ids.contains(&r.id()) {
                batch.push(r.clone());
            }
        }
        self.take_scan_end = scanned;
        batch
    }

    /// Marks `batch`'s requests as claimed by the in-flight proposal for
    /// `slot`. Only tracked at α > 1: with a single slot there is never a
    /// concurrent proposal to keep the requests away from.
    fn claim(&mut self, slot: u64, batch: &[Request]) {
        if self.config.max_alpha() <= 1 {
            return;
        }
        // The prefix the batch's scan covered is now entirely dead or
        // claimed; the next slot's scan starts past it.
        self.pending_cursor = self.pending_cursor.max(self.take_scan_end);
        let ids: Vec<(u64, u64)> = batch.iter().map(Request::id).collect();
        for id in &ids {
            self.claimed_ids.insert(*id);
        }
        self.claimed.insert(slot, ids);
    }

    /// Releases the claim held by `slot`'s proposal (delivery or window
    /// reset). Freed requests may sit anywhere in the queue, so the claim
    /// cursor rewinds to rescan from the front.
    fn release_claim(&mut self, slot: u64) {
        if let Some(ids) = self.claimed.remove(&slot) {
            for id in ids {
                self.claimed_ids.remove(&id);
            }
            self.pending_cursor = 0;
            self.take_scan_end = 0;
        }
    }

    /// Records the proposal bookkeeping for `slot` and runs the leader's
    /// proposal, including handling our own broadcast locally (it does not
    /// loop back).
    fn propose_at(&mut self, slot: u64, regency: u32, value: ValueBytes) -> Vec<CoreOutput> {
        self.proposed.insert(slot, regency);
        let me = self.me;
        let inst = self.instance_entry(slot);
        let mut outputs: Vec<CoreOutput> = inst
            .propose(value.clone())
            .into_iter()
            .map(Self::net)
            .collect();
        let (outs, decision) = inst.on_message(
            me,
            ConsensusMsg::Propose {
                instance: slot,
                epoch: regency,
                value,
            },
        );
        outputs.extend(outs.into_iter().map(Self::net));
        if let Some(d) = decision {
            outputs.extend(self.on_decision(d));
        }
        outputs
    }

    fn apply_sync_actions(&mut self, actions: Vec<SyncAction>) -> Vec<CoreOutput> {
        let mut outputs = Vec::new();
        for action in actions {
            match action {
                SyncAction::Broadcast(m) => outputs.push(CoreOutput::Broadcast(SmrMsg::Sync(m))),
                SyncAction::Send(to, m) => outputs.push(CoreOutput::Send(to, SmrMsg::Sync(m))),
                SyncAction::ProvideStopData { regency, leader } => {
                    let locked = self.collect_locked();
                    let msg = self.synchronizer.make_stopdata(
                        regency,
                        StopData {
                            last_decided: self.last_delivered,
                            locked,
                        },
                    );
                    if leader == self.me {
                        let actions = self.synchronizer.on_message(self.me, msg);
                        outputs.extend(self.apply_sync_actions(actions));
                    } else {
                        outputs.push(CoreOutput::Send(leader, SmrMsg::Sync(msg)));
                    }
                }
                SyncAction::Install {
                    regency,
                    leader,
                    adopt,
                } => outputs.extend(self.install_regency(regency, leader, adopt)),
            }
        }
        outputs
    }

    /// Builds this replica's STOPDATA lock reports.
    ///
    /// At α = 1 this is the seed's rule, kept bit-for-bit: only the single
    /// open slot `last_delivered + 1` is examined. At α > 1 every open
    /// instance in the window reports its lock, so a new leader can restore
    /// all in-flight, possibly-decided values.
    fn collect_locked(&self) -> Vec<LockedReport> {
        let make = |instance: u64, inst: &Instance| {
            inst.locked_value().and_then(|(value, cert)| {
                cert.map(|c| LockedReport {
                    instance,
                    epoch: c.epoch,
                    value,
                    cert: c,
                })
            })
        };
        if self.config.max_alpha() <= 1 {
            let next = self.last_delivered + 1;
            return self
                .instances
                .get(&next)
                .and_then(|inst| make(next, inst))
                .into_iter()
                .collect();
        }
        self.instances
            .range(self.last_delivered + 1..)
            .filter_map(|(&i, inst)| make(i, inst))
            .collect()
    }

    /// Installs a new regency: advances open instances into the new epoch,
    /// adopts carried locked values at their instances, and (as the new
    /// leader) re-proposes them — at α > 1 filling any unlocked gap below
    /// the highest carried instance so in-order delivery cannot stall on a
    /// hole.
    fn install_regency(
        &mut self,
        regency: u32,
        leader: ReplicaId,
        adopt: Vec<(u64, ValueBytes)>,
    ) -> Vec<CoreOutput> {
        self.stats.regency_changes += 1;
        self.timeout_repair = None;
        // Claims belong to the previous regency's proposals; the new leader
        // re-forms batches from everything still pending.
        let slots: Vec<u64> = self.claimed.keys().copied().collect();
        for slot in slots {
            self.release_claim(slot);
        }
        let mut outputs = Vec::new();
        let next = self.last_delivered + 1;
        if self.config.max_alpha() <= 1 {
            // The seed's single-slot path, preserved bit-for-bit: adopt only
            // a value carried for OUR open instance. A replica that already
            // delivered that instance must not re-decide its content one
            // slot later — that is precisely how histories fork.
            let inst = self.instance_entry(next);
            inst.advance_epoch(regency, leader);
            let adopt_here = adopt
                .iter()
                .find(|(instance, _)| *instance == next)
                .map(|(_, value)| value.clone());
            if let Some(value) = adopt_here.clone() {
                inst.adopt_value(value);
            }
            if leader == self.me {
                if let Some(value) = adopt_here {
                    // Re-propose the locked value in the new epoch.
                    outputs.extend(self.propose_at(next, regency, value));
                } else {
                    outputs.extend(self.try_propose());
                }
            }
            return outputs;
        }
        // Windowed path: every open instance moves to the new epoch (fresh
        // instances created below are already born at the new regency —
        // instance_entry reads the installed synchronizer state).
        let open_ids: Vec<u64> = self.instances.range(next..).map(|(&i, _)| i).collect();
        for i in open_ids {
            if let Some(inst) = self.instances.get_mut(&i) {
                inst.advance_epoch(regency, leader);
            }
        }
        self.instance_entry(next); // the next slot must be open either way
                                   // Carried values are adopted at their instances (never at a
                                   // different slot — adopting elsewhere would re-decide old content).
        let mut adopt_map: BTreeMap<u64, ValueBytes> = adopt
            .into_iter()
            .filter(|(instance, _)| *instance >= next)
            .collect();
        for (&instance, value) in &adopt_map {
            self.instance_entry(instance).adopt_value(value.clone());
        }
        if leader == self.me {
            // Claim every carried batch's requests BEFORE filling gaps, so
            // a gap slot's fresh batch cannot re-propose a request that a
            // later carried (possibly decided) value already contains.
            for (&slot, value) in &adopt_map {
                let batch = decode_batch(value).unwrap_or_default();
                self.claim(slot, &batch);
            }
            let max_adopt = adopt_map
                .keys()
                .max()
                .copied()
                .unwrap_or(self.last_delivered);
            let mut slot = next;
            while slot <= max_adopt {
                let value = match adopt_map.remove(&slot) {
                    Some(value) => value,
                    None => {
                        // Unlocked gap below a carried instance: propose
                        // whatever is pending (an empty batch if nothing is)
                        // so the carried decisions above can deliver.
                        let batch = self.take_batch();
                        let value = ValueBytes::from(encode_batch(&batch));
                        self.claim(slot, &batch);
                        value
                    }
                };
                outputs.extend(self.propose_at(slot, regency, value));
                slot += 1;
            }
            // Any remaining window capacity takes fresh batches.
            outputs.extend(self.try_propose());
        }
        outputs
    }

    fn net(out: Output<ConsensusMsg>) -> CoreOutput {
        match out {
            Output::Broadcast(m) => CoreOutput::Broadcast(SmrMsg::Consensus(m)),
            Output::Send(to, m) => CoreOutput::Send(to, SmrMsg::Consensus(m)),
        }
    }
}

#[cfg(test)]
mod tests {
    // Replica ids double as vector indices throughout these tests.
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use smartchain_crypto::keys::Backend;

    fn make_cluster(n: usize) -> Vec<OrderingCore> {
        make_cluster_alpha(n, 4, 1)
    }

    fn make_cluster_alpha(n: usize, max_batch: usize, alpha: u64) -> Vec<OrderingCore> {
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 30; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        (0..n)
            .map(|i| {
                OrderingCore::new(
                    i,
                    view.clone(),
                    secrets[i].clone(),
                    OrderingConfig {
                        max_batch,
                        alpha,
                        ..OrderingConfig::default()
                    },
                    0,
                )
            })
            .collect()
    }

    fn req(client: u64, seq: u64) -> Request {
        Request {
            client,
            seq,
            payload: vec![client as u8, seq as u8],
            signature: None,
        }
    }

    /// Synchronously routes all outputs until quiescence; collects deliveries
    /// per replica. `down` nodes neither send nor receive.
    fn pump(
        cores: &mut [OrderingCore],
        initial: Vec<(ReplicaId, CoreOutput)>,
        down: &[ReplicaId],
    ) -> Vec<Vec<OrderedBatch>> {
        let n = cores.len();
        let mut delivered: Vec<Vec<OrderedBatch>> = vec![Vec::new(); n];
        let mut queue: VecDeque<(ReplicaId, ReplicaId, SmrMsg)> = VecDeque::new();
        let handle = |from: ReplicaId,
                      out: CoreOutput,
                      queue: &mut VecDeque<(ReplicaId, ReplicaId, SmrMsg)>,
                      delivered: &mut Vec<Vec<OrderedBatch>>| {
            match out {
                CoreOutput::Broadcast(m) => {
                    for to in 0..n {
                        if to != from && !down.contains(&to) {
                            queue.push_back((from, to, m.clone()));
                        }
                    }
                }
                CoreOutput::Send(to, m) => {
                    if !down.contains(&to) {
                        queue.push_back((from, to, m));
                    }
                }
                CoreOutput::Deliver(b) => delivered[from].push(b),
                CoreOutput::NeedStateTransfer { .. } => {}
            }
        };
        for (from, out) in initial {
            handle(from, out, &mut queue, &mut delivered);
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            if down.contains(&to) {
                continue;
            }
            for out in cores[to].on_message(from, msg) {
                handle(to, out, &mut queue, &mut delivered);
            }
        }
        delivered
    }

    #[test]
    fn requests_are_ordered_and_delivered_everywhere() {
        let mut cores = make_cluster(4);
        let mut initial = Vec::new();
        for i in 0..6u64 {
            for out in cores[0].submit(req(i, 0)) {
                initial.push((0usize, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[]);
        for (r, batches) in delivered.iter().enumerate() {
            let total: usize = batches.iter().map(|b| b.requests.len()).sum();
            assert_eq!(total, 6, "replica {r} delivered {total}");
            // max_batch = 4 so at least two instances ran.
            assert!(batches.len() >= 2, "replica {r}");
            // Instances are delivered in order.
            let ids: Vec<u64> = batches.iter().map(|b| b.instance).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted);
        }
        // All replicas delivered identical sequences.
        let seq0: Vec<(u64, u64)> = delivered[0]
            .iter()
            .flat_map(|b| b.requests.iter().map(Request::id))
            .collect();
        for r in 1..4 {
            let seq: Vec<(u64, u64)> = delivered[r]
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(seq, seq0, "replica {r} ordering differs");
        }
    }

    #[test]
    fn duplicate_requests_delivered_once() {
        let mut cores = make_cluster(4);
        let mut initial = Vec::new();
        // The same request admitted twice at the leader plus once elsewhere.
        for out in cores[0].submit(req(7, 1)) {
            initial.push((0usize, out));
        }
        for out in cores[0].submit(req(7, 1)) {
            initial.push((0usize, out));
        }
        for out in cores[1].submit(req(7, 1)) {
            initial.push((1usize, out));
        }
        let delivered = pump(&mut cores, initial, &[]);
        for (r, batches) in delivered.iter().enumerate() {
            let ids: Vec<(u64, u64)> = batches
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(ids, vec![(7, 1)], "replica {r}: {ids:?}");
        }
    }

    #[test]
    fn proofs_attached_to_deliveries_verify() {
        let mut cores = make_cluster(4);
        let view = cores[0].view().clone();
        let mut initial = Vec::new();
        for out in cores[0].submit(req(1, 1)) {
            initial.push((0usize, out));
        }
        let delivered = pump(&mut cores, initial, &[]);
        for batches in &delivered {
            for b in batches {
                assert!(b.proof.verify(&view), "delivery proof must verify");
            }
        }
    }

    #[test]
    fn progress_resumes_after_leader_change() {
        let mut cores = make_cluster(4);
        // Leader 0 is down; submit to the others.
        let mut initial = Vec::new();
        for r in 1..4usize {
            for out in cores[r].submit(req(42, 5)) {
                initial.push((r, out));
            }
        }
        // Nothing decides while leader is down.
        let delivered = pump(&mut cores, initial, &[0]);
        assert!(delivered.iter().all(|d| d.is_empty()));
        // Timeouts fire at the live replicas.
        let mut initial = Vec::new();
        for r in 1..4usize {
            for out in cores[r].on_progress_timeout() {
                initial.push((r, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[0]);
        for r in 1..4usize {
            let total: usize = delivered[r].iter().map(|b| b.requests.len()).sum();
            assert_eq!(total, 1, "replica {r} must deliver after leader change");
        }
        for r in 1..4usize {
            assert_eq!(cores[r].regency(), 1);
            assert_eq!(cores[r].leader(), 1);
        }
    }

    #[test]
    fn submit_on_follower_does_not_propose() {
        let mut cores = make_cluster(4);
        let outs = cores[2].submit(req(1, 1));
        assert!(
            outs.iter().all(|o| !matches!(
                o,
                CoreOutput::Broadcast(SmrMsg::Consensus(ConsensusMsg::Propose { .. }))
            )),
            "followers must not propose"
        );
    }

    #[test]
    fn far_future_instance_triggers_state_transfer_request() {
        let mut cores = make_cluster(4);
        let sig = SecretKey::from_seed(Backend::Sim, &[30u8; 32]).sign(b"w");
        let outs = cores[3].on_message(
            0,
            SmrMsg::Consensus(ConsensusMsg::Write {
                instance: 100,
                epoch: 0,
                value_hash: [0u8; 32],
                signature: sig,
            }),
        );
        assert!(outs.iter().any(|o| matches!(
            o,
            CoreOutput::NeedStateTransfer {
                observed_instance: 100
            }
        )));
    }

    #[test]
    fn fast_forward_skips_instances() {
        let mut cores = make_cluster(4);
        cores[0].fast_forward(50);
        assert_eq!(cores[0].last_delivered(), 50);
        // Traffic for instance 51 is now in-window.
        let sig = SecretKey::from_seed(Backend::Sim, &[31u8; 32]).sign(b"w");
        let outs = cores[0].on_message(
            1,
            SmrMsg::Consensus(ConsensusMsg::Write {
                instance: 51,
                epoch: 0,
                value_hash: [0u8; 32],
                signature: sig,
            }),
        );
        assert!(outs
            .iter()
            .all(|o| !matches!(o, CoreOutput::NeedStateTransfer { .. })));
    }

    /// α = 4, max_batch = 1: four submissions open four concurrent
    /// instances immediately, each claiming a distinct request — and the
    /// whole pipeline delivers in instance order everywhere.
    #[test]
    fn pipelined_leader_opens_alpha_instances() {
        let mut cores = make_cluster_alpha(4, 1, 4);
        let mut initial = Vec::new();
        let mut proposed_instances = Vec::new();
        for i in 0..6u64 {
            for out in cores[0].submit(req(20 + i, 1)) {
                if let CoreOutput::Broadcast(SmrMsg::Consensus(ConsensusMsg::Propose {
                    instance,
                    ..
                })) = &out
                {
                    proposed_instances.push(*instance);
                }
                initial.push((0usize, out));
            }
        }
        // Six requests, window of four: exactly instances 1..=4 open.
        assert_eq!(proposed_instances, vec![1, 2, 3, 4]);
        let delivered = pump(&mut cores, initial, &[]);
        for (r, batches) in delivered.iter().enumerate() {
            let ids: Vec<(u64, u64)> = batches
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(
                ids,
                (0..6u64).map(|i| (20 + i, 1)).collect::<Vec<_>>(),
                "replica {r} must deliver all six requests in submission order"
            );
            let instances: Vec<u64> = batches.iter().map(|b| b.instance).collect();
            assert_eq!(instances, vec![1, 2, 3, 4, 5, 6], "replica {r}");
        }
    }

    /// Leader crash with α = 4 open instances: replicas 1 and 2 hold write
    /// certificates for all four in-flight values (any of which could have
    /// decided), the leader dies, and the regency change must recover every
    /// locked value at its own instance and deliver them in order — no
    /// decided value lost, no hole, no reordering.
    #[test]
    fn leader_crash_with_pipelined_instances_recovers_all_locked_values() {
        let mut cores = make_cluster_alpha(4, 1, 4);
        let n = 4usize;
        let mut queue: VecDeque<(usize, usize, SmrMsg)> = VecDeque::new();
        fn push_outs(
            n: usize,
            from: usize,
            outs: Vec<CoreOutput>,
            queue: &mut VecDeque<(usize, usize, SmrMsg)>,
        ) -> usize {
            let mut delivered = 0;
            for out in outs {
                match out {
                    CoreOutput::Broadcast(m) => {
                        for to in 0..n {
                            if to != from {
                                queue.push_back((from, to, m.clone()));
                            }
                        }
                    }
                    CoreOutput::Send(to, m) => queue.push_back((from, to, m)),
                    CoreOutput::Deliver(_) => delivered += 1,
                    CoreOutput::NeedStateTransfer { .. } => {}
                }
            }
            delivered
        }
        // Clients broadcast to every replica; the α = 4 leader opens four
        // instances (one request each at max_batch = 1).
        for i in 0..4u64 {
            for r in 0..n {
                let outs = cores[r].submit(req(30 + i, 1));
                push_outs(n, r, outs, &mut queue);
            }
        }
        // Phase 1: deliver everything except ACCEPTs, and nothing to or
        // from replica 3 — replicas 1 and 2 WRITE-lock all four values
        // (full write certificates) but nothing decides anywhere.
        let mut delivered_pre = 0;
        while let Some((from, to, msg)) = queue.pop_front() {
            if to == 3 || from == 3 {
                continue;
            }
            if matches!(msg, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                continue;
            }
            let outs = cores[to].on_message(from, msg);
            delivered_pre += push_outs(n, to, outs, &mut queue);
        }
        assert_eq!(delivered_pre, 0, "nothing may decide in phase 1");
        // Phase 2: leader 0 crashes; progress timeouts fire at the rest.
        let mut initial = Vec::new();
        for r in 1..4usize {
            for out in cores[r].on_progress_timeout() {
                initial.push((r, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[0]);
        for r in 1..4usize {
            let ids: Vec<(u64, u64)> = delivered[r]
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(
                ids,
                vec![(30, 1), (31, 1), (32, 1), (33, 1)],
                "replica {r}: every locked in-flight value must survive the \
                 leader change at its own instance"
            );
            let instances: Vec<u64> = delivered[r].iter().map(|b| b.instance).collect();
            assert_eq!(instances, vec![1, 2, 3, 4], "replica {r} delivery order");
            assert_eq!(cores[r].regency(), 1, "replica {r}");
            assert_eq!(cores[r].leader(), 1, "replica {r}");
        }
    }

    /// A gap in the recovered window: only instances 2 and 4 were locked
    /// before the leader died. The new leader must fill instances 1 and 3
    /// (here with empty batches — nothing else is pending) so the locked
    /// values can deliver; order and content are preserved.
    #[test]
    fn view_change_fills_unlocked_gaps_below_carried_instances() {
        let mut cores = make_cluster_alpha(4, 1, 4);
        let n = 4usize;
        let mut queue: VecDeque<(usize, usize, SmrMsg)> = VecDeque::new();
        // Only the leader admits the requests (no follower retransmission):
        // after the crash the new leader has nothing pending, so gap slots
        // are filled with empty batches.
        for i in 0..4u64 {
            for out in cores[0].submit(req(40 + i, 1)) {
                match out {
                    CoreOutput::Broadcast(m) => {
                        for to in 0..n {
                            if to != 0 {
                                queue.push_back((0, to, m.clone()));
                            }
                        }
                    }
                    CoreOutput::Send(to, m) => queue.push_back((0, to, m)),
                    _ => {}
                }
            }
        }
        // Deliver only instance-2 and instance-4 traffic (no ACCEPTs, and
        // replica 3 partitioned): locks form at replicas 1 and 2 for
        // instances 2 and 4 only.
        while let Some((from, to, msg)) = queue.pop_front() {
            if to == 3 || from == 3 {
                continue;
            }
            let instance = match &msg {
                SmrMsg::Consensus(c) => c.instance(),
                _ => 0,
            };
            if !matches!(instance, 2 | 4) {
                continue;
            }
            if matches!(msg, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                continue;
            }
            let outs = cores[to].on_message(from, msg);
            for out in outs {
                match out {
                    CoreOutput::Broadcast(m) => {
                        for peer in 0..n {
                            if peer != to {
                                queue.push_back((to, peer, m.clone()));
                            }
                        }
                    }
                    CoreOutput::Send(peer, m) => queue.push_back((to, peer, m)),
                    CoreOutput::Deliver(_) => panic!("nothing may decide in phase 1"),
                    CoreOutput::NeedStateTransfer { .. } => {}
                }
            }
        }
        // A late client request reaches the survivors (they need pending
        // work for the progress timeout to fire), then timeouts fire.
        let mut initial = Vec::new();
        for r in 1..4usize {
            for out in cores[r].submit(req(99, 1)) {
                initial.push((r, out));
            }
        }
        for r in 1..4usize {
            for out in cores[r].on_progress_timeout() {
                initial.push((r, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[0]);
        for r in 1..3usize {
            let per_instance: Vec<(u64, usize)> = delivered[r]
                .iter()
                .take(4)
                .map(|b| (b.instance, b.requests.len()))
                .collect();
            assert_eq!(
                per_instance,
                vec![(1, 1), (2, 1), (3, 0), (4, 1)],
                "replica {r}: gap 1 takes the pending request, gap 3 fills \
                 empty, locked values stay at their slots"
            );
            let ids: Vec<(u64, u64)> = delivered[r]
                .iter()
                .flat_map(|b| b.requests.iter().map(Request::id))
                .collect();
            assert_eq!(ids, vec![(99, 1), (41, 1), (43, 1)], "replica {r}");
        }
    }

    /// α = 4, max_batch = 2, eight requests queued before leadership: the
    /// pipeline's per-slot claims must be disjoint, consecutive, and in
    /// submission order — pinning that the O(batch) claim cursor neither
    /// rescans nor skips.
    #[test]
    fn pipelined_batches_claim_disjoint_consecutive_requests() {
        let mut cores = make_cluster_alpha(4, 2, 4);
        let mut initial = Vec::new();
        for r in 1..4usize {
            for i in 0..8u64 {
                for out in cores[r].submit(req(60 + i, 1)) {
                    initial.push((r, out));
                }
            }
        }
        // Leader 0 is down; the timeout hands leadership to replica 1,
        // whose try_propose fills all four slots from the queued backlog.
        for r in 1..4usize {
            for out in cores[r].on_progress_timeout() {
                initial.push((r, out));
            }
        }
        let delivered = pump(&mut cores, initial, &[0]);
        let expected: Vec<Vec<(u64, u64)>> = (0..4u64)
            .map(|slot| vec![(60 + 2 * slot, 1), (61 + 2 * slot, 1)])
            .collect();
        for r in 1..4usize {
            let batches: Vec<Vec<(u64, u64)>> = delivered[r]
                .iter()
                .map(|b| b.requests.iter().map(Request::id).collect())
                .collect();
            assert_eq!(batches, expected, "replica {r}");
        }
    }

    #[test]
    fn fetch_flag_byte_packs_have_and_range() {
        // Legacy single-instance encodings survive unchanged.
        assert_eq!(pack_fetch(false, 0), 0);
        assert_eq!(pack_fetch(true, 0), 1);
        assert_eq!(unpack_fetch(0), (false, 0));
        assert_eq!(unpack_fetch(1), (true, 0));
        for extra in [1u8, 3, 63, 127] {
            for have in [false, true] {
                assert_eq!(unpack_fetch(pack_fetch(have, extra)), (have, extra));
            }
        }
        // Out-of-range extensions saturate instead of corrupting the flag.
        assert_eq!(unpack_fetch(pack_fetch(true, 255)), (true, 127));
    }

    /// A ranged fetch is answered instance by instance from the responder's
    /// shared buffers: decided instances ship value + proof without copying
    /// the batch bytes.
    #[test]
    fn ranged_instance_fetch_answers_each_instance() {
        let mut cores = make_cluster_alpha(4, 1, 4);
        let mut initial = Vec::new();
        for i in 0..2u64 {
            for out in cores[0].submit(req(70 + i, 1)) {
                initial.push((0usize, out));
            }
        }
        // Replica 3 misses everything; the rest decide instances 1 and 2.
        let _ = pump(&mut cores, initial, &[3]);
        assert_eq!(cores[1].last_delivered(), 2);
        let outs = cores[1].on_message(
            3,
            SmrMsg::InstanceFetch {
                instance: 1,
                have: pack_fetch(false, 1),
            },
        );
        let mut answered = Vec::new();
        for out in outs {
            match out {
                CoreOutput::Send(
                    3,
                    SmrMsg::InstanceRep {
                        instance, decided, ..
                    },
                ) => {
                    assert!(decided.is_some(), "instance {instance} decided here");
                    answered.push(instance);
                }
                other => panic!("unexpected output {other:?}"),
            }
        }
        assert_eq!(answered, vec![1, 2]);
    }
}

#[cfg(test)]
mod wire_len_tests {
    use super::*;
    use crate::types::{Reply, Request};
    use smartchain_crypto::keys::Backend;

    fn sig(seed: u8, msg: &[u8]) -> Signature {
        SecretKey::from_seed(Backend::Sim, &[seed; 32]).sign(msg)
    }

    #[test]
    fn encoded_len_override_matches_encoding() {
        let msgs = vec![
            SmrMsg::Request(Request {
                client: 1,
                seq: 2,
                payload: vec![1; 30],
                signature: None,
            }),
            SmrMsg::Consensus(ConsensusMsg::Propose {
                instance: 1,
                epoch: 0,
                value: vec![2; 50].into(),
            }),
            SmrMsg::Reply(Reply {
                client: 1,
                seq: 2,
                result: vec![3; 10],
                replica: 0,
            }),
            SmrMsg::StateReq { from_batch: 17 },
            SmrMsg::StateRep {
                covered: 8,
                snapshot: Some(vec![9; 40]),
                first_batch: 9,
                batches: vec![vec![1; 12], vec![2; 7]],
                frontier: vec![(3, 4), (5, 6)],
                regency: 2,
                cert: None,
            },
            SmrMsg::StateRep {
                covered: 8,
                snapshot: Some(vec![9; 40]),
                first_batch: 9,
                batches: Vec::new(),
                frontier: Vec::new(),
                regency: 0,
                cert: Some(crate::durability::CheckpointCert {
                    covered: 8,
                    state_root: [7u8; 32],
                    tip: [8u8; 32],
                    signatures: vec![(0, sig(1, b"x")), (2, sig(2, b"y"))],
                }),
            },
            SmrMsg::CkptShare {
                replica: 3,
                covered: 16,
                state_root: [4u8; 32],
                tip: [5u8; 32],
                signature: sig(3, b"z"),
            },
            SmrMsg::InstanceFetch {
                instance: 12,
                have: 1,
            },
            SmrMsg::InstanceRep {
                instance: 12,
                decided: Some((
                    vec![6; 20].into(),
                    Arc::new(DecisionProof {
                        instance: 12,
                        epoch: 1,
                        value_hash: [9u8; 32],
                        accepts: vec![(0, sig(4, b"a")), (1, sig(5, b"b")), (2, sig(6, b"c"))],
                    }),
                )),
                msgs: Vec::new(),
            },
            SmrMsg::InstanceRep {
                instance: 13,
                decided: None,
                msgs: vec![
                    ConsensusMsg::Write {
                        instance: 13,
                        epoch: 0,
                        value_hash: [1u8; 32],
                        signature: sig(7, b"w"),
                    },
                    ConsensusMsg::ValueReply {
                        instance: 13,
                        epoch: 0,
                        value: vec![2; 9].into(),
                    },
                ],
            },
        ];
        for m in msgs {
            assert_eq!(m.encoded_len(), m.to_vec().len());
            assert_eq!(
                m.wire_size(),
                smartchain_codec::FRAME_BYTES + m.to_vec().len()
            );
            let bytes = m.to_vec();
            let back: SmrMsg = smartchain_codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }
}
