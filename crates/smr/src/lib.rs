//! Mod-SMaRt state machine replication for SmartChain.
//!
//! This crate reimplements the BFT-SMaRt stack the paper builds on
//! (§II-C): the [`ordering`] core (total order via sequential VP-Consensus
//! instances with regency-based leader changes), the [`types`] wire
//! vocabulary, the [`app`] service interface, simulation [`actor`]s for
//! replicas and closed-loop [`client`]s, and the Dura-SMaRt-style
//! [`durability`] pipeline whose batch-coalescing the paper measures in
//! Table I, and the deterministic parallel-EXECUTE scheduler ([`exec`]:
//! lane planning over hash-sharded state, worker pool, conflict stats) —
//! plus the metal deployment layer: the [`transport`] abstraction
//! (in-process channels or authenticated, reconnecting TCP links) under the
//! [`runtime`]'s replica loop.

pub mod actor;
pub mod app;
pub mod client;
pub mod durability;
pub mod exec;
pub mod ordering;
pub mod reconfig;
pub mod runtime;
pub mod transport;
pub mod types;
