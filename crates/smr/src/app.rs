//! The replicated-service interface (paper §II-B).

use crate::exec::{ExecPool, LaneHint};
use crate::types::Request;

/// A deterministic application replicated by the SMR protocol.
///
/// Requirements from the state machine approach: executions must be
/// deterministic functions of `(state, request)`, and snapshots must capture
/// everything `execute` depends on.
///
/// The lane methods ([`Application::lane_hint`],
/// [`Application::configure_lanes`], [`Application::execute_group`]) opt an
/// application into the deterministic parallel EXECUTE stage
/// ([`crate::exec`]). Their defaults keep every existing application fully
/// serial: the default hint is [`LaneHint::Cross`], which plans each
/// transaction as a barrier, so a laned deployment behaves (and costs)
/// exactly like a serial one.
pub trait Application: Send + 'static {
    /// Executes one ordered request, returning the reply payload.
    fn execute(&mut self, request: &Request) -> Vec<u8>;

    /// Serializes the full service state.
    fn take_snapshot(&self) -> Vec<u8>;

    /// Replaces the service state with a snapshot taken by a peer.
    fn install_snapshot(&mut self, snapshot: &[u8]);

    /// Resets to the initial (genesis) state — used when a crashed replica
    /// restarts with no snapshot on disk.
    fn reset(&mut self);

    /// Statically derives which of `lanes` execution lanes `request`'s
    /// read/write set lands on. Must be a pure function of the request (not
    /// of mutable state), so every replica plans identically; returning
    /// [`LaneHint::Cross`] is always safe and means "execute serially".
    fn lane_hint(&self, _request: &Request, _lanes: usize) -> LaneHint {
        LaneHint::Cross
    }

    /// Re-partitions internal state for `lanes` execution lanes. Called
    /// once at deployment setup (and after recovery), before any laned
    /// execution. State content must be unaffected.
    fn configure_lanes(&mut self, _lanes: usize) {}

    /// Executes one parallel group of a [`crate::exec::BatchPlan`]:
    /// `group[lane]` lists `(original_index, request)` pairs, in batch
    /// order, whose footprints are disjoint across lanes. Returns
    /// `(original_index, result)` pairs (any order — the scheduler
    /// reassembles). Implementations may fan lanes out on `pool`; the
    /// default executes serially in original batch order, which is correct
    /// for every application.
    fn execute_group(
        &mut self,
        group: &[Vec<(usize, &Request)>],
        _pool: Option<&ExecPool>,
    ) -> Vec<(usize, Vec<u8>)> {
        let mut flat: Vec<(usize, &Request)> =
            group.iter().flat_map(|lane| lane.iter().copied()).collect();
        flat.sort_unstable_by_key(|&(index, _)| index);
        flat.into_iter()
            .map(|(index, request)| (index, self.execute(request)))
            .collect()
    }
}

/// A trivial key-value counter application for tests: payload bytes are added
/// into a running sum per client; the reply is the new sum (little-endian).
#[derive(Debug, Default, Clone)]
pub struct CounterApp {
    sums: std::collections::BTreeMap<u64, u64>,
}

impl CounterApp {
    /// Creates an empty counter app.
    pub fn new() -> CounterApp {
        CounterApp::default()
    }

    /// Current sum for a client.
    pub fn sum(&self, client: u64) -> u64 {
        self.sums.get(&client).copied().unwrap_or(0)
    }

    /// All per-client sums (replica-state comparison in tests).
    pub fn totals(&self) -> &std::collections::BTreeMap<u64, u64> {
        &self.sums
    }
}

impl Application for CounterApp {
    /// Each logical client owns exactly one counter, so requests shard
    /// cleanly by client id — no transaction is ever cross-lane.
    fn lane_hint(&self, request: &Request, lanes: usize) -> LaneHint {
        LaneHint::Single((request.client % lanes.max(1) as u64) as usize)
    }

    fn execute(&mut self, request: &Request) -> Vec<u8> {
        let add: u64 = request.payload.iter().map(|&b| b as u64).sum();
        let sum = self.sums.entry(request.client).or_insert(0);
        *sum += add;
        sum.to_le_bytes().to_vec()
    }

    fn take_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in &self.sums {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn install_snapshot(&mut self, snapshot: &[u8]) {
        self.sums.clear();
        for chunk in snapshot.chunks_exact(16) {
            let k = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
            let v = u64::from_le_bytes(chunk[8..].try_into().expect("8 bytes"));
            self.sums.insert(k, v);
        }
    }

    fn reset(&mut self) {
        self.sums.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(client: u64, seq: u64, payload: Vec<u8>) -> Request {
        Request {
            client,
            seq,
            payload,
            signature: None,
        }
    }

    #[test]
    fn counter_is_deterministic() {
        let mut a = CounterApp::new();
        let mut b = CounterApp::new();
        for i in 0..10u64 {
            let r = req(i % 3, i, vec![i as u8, 2 * i as u8]);
            assert_eq!(a.execute(&r), b.execute(&r));
        }
        assert_eq!(a.take_snapshot(), b.take_snapshot());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = CounterApp::new();
        a.execute(&req(1, 0, vec![5]));
        a.execute(&req(2, 0, vec![7]));
        let snap = a.take_snapshot();
        let mut b = CounterApp::new();
        b.install_snapshot(&snap);
        assert_eq!(b.sum(1), 5);
        assert_eq!(b.sum(2), 7);
    }

    #[test]
    fn reset_clears_state() {
        let mut a = CounterApp::new();
        a.execute(&req(1, 0, vec![5]));
        a.reset();
        assert_eq!(a.sum(1), 0);
    }
}
