//! Requests, replies and batches — the SMR wire vocabulary.

use smartchain_codec::{decode_seq, encode_seq, Decode, DecodeError, Encode};
use smartchain_consensus::ReplicaId;
use smartchain_crypto::keys::{PublicKey, Signature};

/// A client operation submitted for total ordering.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Logical client identifier.
    pub client: u64,
    /// Client-local sequence number (dedup/replay protection).
    pub seq: u64,
    /// Application payload (for SMaRtCoin: an encoded, signed transaction).
    pub payload: Vec<u8>,
    /// Client signature over [`Request::sign_payload`], when the deployment
    /// uses signatures.
    pub signature: Option<(PublicKey, Signature)>,
}

impl Request {
    /// Canonical bytes covered by the client signature.
    pub fn sign_payload(client: u64, seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + 24);
        b"sc-request".as_slice().encode(&mut out);
        client.encode(&mut out);
        seq.encode(&mut out);
        payload.encode(&mut out);
        out
    }

    /// Verifies the embedded signature; requests without one verify
    /// trivially (signature-free deployments).
    pub fn verify_signature(&self) -> bool {
        match &self.signature {
            None => true,
            Some((key, sig)) => key.verify(
                &Request::sign_payload(self.client, self.seq, &self.payload),
                sig,
            ),
        }
    }

    /// Unique request identity.
    pub fn id(&self) -> (u64, u64) {
        (self.client, self.seq)
    }

    /// Wire size in bytes — the canonical encoding's exact length (requests
    /// travel nested inside framed messages, so no framing is added here).
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
        self.payload.encode(out);
        match &self.signature {
            None => 0u8.encode(out),
            Some((key, sig)) => {
                1u8.encode(out);
                key.to_wire().encode(out);
                sig.to_wire().encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        self.client.encoded_len()
            + self.seq.encoded_len()
            + self.payload.encoded_len()
            + 1
            + if self.signature.is_some() { 33 + 65 } else { 0 }
    }
}

impl Decode for Request {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let client = u64::decode(input)?;
        let seq = u64::decode(input)?;
        let payload = Vec::<u8>::decode(input)?;
        let signature = match u8::decode(input)? {
            0 => None,
            1 => {
                let key = PublicKey::from_wire(&<[u8; 33]>::decode(input)?);
                let sig = Signature::from_wire(&<[u8; 65]>::decode(input)?);
                Some((key, sig))
            }
            d => return Err(DecodeError::BadDiscriminant(d as u32)),
        };
        Ok(Request {
            client,
            seq,
            payload,
            signature,
        })
    }
}

/// A replica's reply to one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// The client the reply is addressed to.
    pub client: u64,
    /// Sequence number of the replied request.
    pub seq: u64,
    /// Application result bytes.
    pub result: Vec<u8>,
    /// Which replica produced this reply.
    pub replica: ReplicaId,
}

impl Reply {
    /// Wire size in bytes — the canonical encoding's exact length.
    pub fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encode for Reply {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
        self.result.encode(out);
        (self.replica as u64).encode(out);
    }

    fn encoded_len(&self) -> usize {
        self.client.encoded_len() + self.seq.encoded_len() + self.result.encoded_len() + 8
    }
}

impl Decode for Reply {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Reply {
            client: u64::decode(input)?,
            seq: u64::decode(input)?,
            result: Vec::<u8>::decode(input)?,
            replica: u64::decode(input)? as usize,
        })
    }
}

/// Encodes a batch of requests into a consensus value.
pub fn encode_batch(requests: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_seq(requests, &mut out);
    out
}

/// Decodes a consensus value back into requests.
///
/// # Errors
///
/// Returns a decode error when the value is not a well-formed batch.
pub fn decode_batch(mut value: &[u8]) -> Result<Vec<Request>, DecodeError> {
    let batch = decode_seq::<Request>(&mut value)?;
    if !value.is_empty() {
        return Err(DecodeError::TrailingBytes(value.len()));
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_codec::Encode;
    use smartchain_crypto::keys::{Backend, SecretKey};

    fn signed_request(seed: u8, client: u64, seq: u64) -> Request {
        let sk = SecretKey::from_seed(Backend::Sim, &[seed; 32]);
        let payload = vec![seed; 50];
        let sig = sk.sign(&Request::sign_payload(client, seq, &payload));
        Request {
            client,
            seq,
            payload,
            signature: Some((sk.public_key(), sig)),
        }
    }

    #[test]
    fn request_roundtrip_and_verify() {
        let req = signed_request(1, 10, 3);
        assert!(req.verify_signature());
        let bytes = smartchain_codec::to_bytes(&req);
        let back: Request = smartchain_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, req);
        assert!(back.verify_signature());
    }

    #[test]
    fn tampered_request_fails_verification() {
        let mut req = signed_request(1, 10, 3);
        req.payload[0] ^= 0xff;
        assert!(!req.verify_signature());
        let mut req2 = signed_request(1, 10, 3);
        req2.seq = 4;
        assert!(!req2.verify_signature());
    }

    #[test]
    fn unsigned_request_verifies_trivially() {
        let req = Request {
            client: 1,
            seq: 1,
            payload: vec![1],
            signature: None,
        };
        assert!(req.verify_signature());
    }

    #[test]
    fn batch_roundtrip() {
        let batch: Vec<Request> = (0..5).map(|i| signed_request(i as u8 + 1, i, 0)).collect();
        let value = encode_batch(&batch);
        assert_eq!(decode_batch(&value).unwrap(), batch);
    }

    #[test]
    fn malformed_batch_rejected() {
        assert!(decode_batch(&[1, 2, 3]).is_err());
    }

    #[test]
    fn reply_roundtrip() {
        let reply = Reply {
            client: 3,
            seq: 9,
            result: vec![1, 2],
            replica: 2,
        };
        let bytes = smartchain_codec::to_bytes(&reply);
        assert_eq!(
            smartchain_codec::from_bytes::<Reply>(&bytes).unwrap(),
            reply
        );
    }

    #[test]
    fn encoded_len_override_matches_encoding() {
        let signed = signed_request(1, 10, 3);
        let unsigned = Request {
            client: 1,
            seq: 1,
            payload: vec![1, 2, 3],
            signature: None,
        };
        let reply = Reply {
            client: 3,
            seq: 9,
            result: vec![1, 2],
            replica: 2,
        };
        assert_eq!(
            signed.encoded_len(),
            smartchain_codec::to_bytes(&signed).len()
        );
        assert_eq!(
            unsigned.encoded_len(),
            smartchain_codec::to_bytes(&unsigned).len()
        );
        assert_eq!(
            reply.encoded_len(),
            smartchain_codec::to_bytes(&reply).len()
        );
    }

    #[test]
    fn wire_sizes_match_paper_scale() {
        // Paper §IV-A: SPEND requests ≈ 310 bytes with signature.
        let req = signed_request(1, 1, 1);
        // 50-byte payload + signature + ids: in the right ballpark (not a
        // strict equality — serialization differs from Java).
        assert!(req.wire_size() > 100 && req.wire_size() < 400);
    }
}
