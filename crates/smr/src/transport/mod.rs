//! The replica messaging substrate: authenticated point-to-point links
//! behind one [`Transport`] trait.
//!
//! Deployed BFT systems treat reconnecting, authenticated links as a
//! first-class subsystem, not an afterthought bolted onto the consensus
//! core. This module makes the link layer a value the runtime is generic
//! over:
//!
//! * [`channel`] — the in-process backend (std `mpsc` channels, one per
//!   replica), preserving the original `LocalCluster` semantics bit-for-bit;
//! * [`tcp`] — real sockets: length-framed, HMAC-authenticated streams
//!   driven by a single poll-based [`reactor`] per replica, embedded in the
//!   replica loop's own thread (nonblocking accept/read/write, bounded
//!   per-connection write queues drained with vectored writes, client
//!   admission control), with automatic redial so a restarted replica
//!   rejoins without respawning the world;
//! * [`reactor`] — the event loop itself plus its building blocks:
//!   incremental frame reassembly, pooled write queues, and the
//!   [`TransportStats`] counters;
//! * [`sys`] — the thin in-tree `poll(2)`/nonblocking-`connect(2)` wrapper
//!   (no external crates);
//! * [`frame`] — the shared wire format: a fixed 8-byte header (4-byte
//!   little-endian length + 4-byte truncated HMAC-SHA256 tag, exactly the
//!   `smartchain_codec::FRAME_BYTES` the simulator's NIC model charges)
//!   followed by the message's canonical [`smartchain_codec::Encode`] bytes;
//! * [`cluster`] — the deployment descriptor (`cluster.toml`): member
//!   addresses plus the cluster secret that pairwise link keys and
//!   deterministic per-replica consensus keys are derived from.
//!
//! Both backends speak the same [`NetEvent`] vocabulary, so
//! `runtime::replica_loop` runs unchanged over either.

pub mod channel;
pub mod cluster;
pub mod frame;
pub mod reactor;
pub mod sys;
pub mod tcp;

pub use channel::{channel_mesh, ChannelMeshHandle, ChannelTransport};
pub use cluster::ClusterConfig;
pub use reactor::{StatsInner, TransportStats};
pub use tcp::{Injector, TcpClient, TcpClientPool, TcpConfig, TcpTransport};

use crate::ordering::SmrMsg;
use crate::types::{Reply, Request};
use smartchain_consensus::ReplicaId;
use std::time::Duration;

/// An inbound event surfaced by a transport to its replica loop.
#[derive(Debug)]
pub enum NetEvent {
    /// A message from peer replica `from` (authenticated by the link).
    Peer {
        /// Sending replica (established at the link handshake).
        from: ReplicaId,
        /// The message.
        msg: SmrMsg,
    },
    /// A client request.
    Client(Request),
    /// The link to `peer` was (re-)established — either our writer redialed
    /// it or the peer dialed in. Messages queued for the peer may have died
    /// with the previous connection; the replica should re-send protocol
    /// state the peer cannot recover on its own (see
    /// `OrderingCore::on_peer_reconnect`).
    PeerUp(ReplicaId),
    /// Orderly shutdown request (injected by the embedding).
    Shutdown,
}

/// Why a blocking receive returned without an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The transport is closed; no further events will arrive.
    Closed,
}

/// A replica's view of the cluster's point-to-point links.
///
/// The contract is deliberately weaker than a channel's: sends are
/// *at-most-once* (a torn connection or full outbox drops messages), which
/// is exactly what the protocol layers already tolerate — consensus repairs
/// via `FetchValue` and state transfer, the synchronizer via
/// [`NetEvent::PeerUp`]-triggered resends.
pub trait Transport: Send + 'static {
    /// This replica's id.
    fn me(&self) -> ReplicaId;

    /// Cluster size.
    fn n(&self) -> usize;

    /// Best-effort send to one peer.
    fn send(&mut self, to: ReplicaId, msg: SmrMsg);

    /// Best-effort send to every peer but ourselves.
    fn broadcast(&mut self, msg: &SmrMsg) {
        for to in 0..self.n() {
            if to != self.me() {
                self.send(to, msg.clone());
            }
        }
    }

    /// Best-effort reply to a client (routed by `reply.client`).
    fn reply(&mut self, reply: Reply);

    /// Best-effort replies to every client of one decided batch. Backends
    /// that can fan the whole batch out in a single operation (one reactor
    /// wakeup instead of one per reply) override this; the default is the
    /// per-reply loop.
    fn reply_all(&mut self, replies: Vec<Reply>) {
        for reply in replies {
            self.reply(reply);
        }
    }

    /// Blocking receive with timeout.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] when nothing arrived, [`RecvError::Closed`]
    /// when the transport shut down.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<NetEvent, RecvError>;

    /// Non-blocking receive.
    fn try_recv(&mut self) -> Option<NetEvent>;
}
