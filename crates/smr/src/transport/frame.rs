//! The shared wire format of the TCP links.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! ┌───────────────┬───────────────┬──────────────────────────────┐
//! │ len: u32 (LE) │ tag: [u8; 4]  │ payload: len bytes           │
//! └───────────────┴───────────────┴──────────────────────────────┘
//! ```
//!
//! The 8-byte header is exactly [`smartchain_codec::FRAME_BYTES`] — the
//! per-message transport overhead the simulator's NIC model has charged all
//! along — and the payload is the message's canonical
//! [`smartchain_codec::Encode`] bytes, so `wire_size()` and the real socket
//! agree byte-for-byte. `tag` is a truncated HMAC-SHA256 over the payload
//! under a *pairwise link key* derived from the cluster secret and the
//! (sender, receiver) pair: a connected peer cannot spoof frames as another
//! replica without that pair's key.
//!
//! The first frame on every connection is a [`Hello`] naming the dialer; its
//! tag is verified under the key of the *claimed* identity, which is what
//! rejects spoofed session handshakes.

use smartchain_codec::{Decode, Encode};
use smartchain_consensus::ReplicaId;
use smartchain_crypto::hmac::{derive_key, hmac_sha256, verify_tag};
use std::io::{self, Read, Write};

/// Truncated MAC length carried per frame.
pub const TAG_BYTES: usize = 4;
/// Full frame header: length prefix + tag (= `smartchain_codec::FRAME_BYTES`).
pub const HEADER_BYTES: usize = 4 + TAG_BYTES;
/// Frame size sanity cap. State-transfer replies carry whole batch suffixes,
/// so the cap is generous; anything larger is a protocol violation.
pub const MAX_FRAME: usize = 64 << 20;

const _: () = assert!(HEADER_BYTES == smartchain_codec::FRAME_BYTES);

/// A per-direction link authentication key.
#[derive(Clone)]
pub struct FrameKey([u8; 32]);

impl std::fmt::Debug for FrameKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FrameKey(..)")
    }
}

impl FrameKey {
    /// The key authenticating frames sent by replica `from` to replica `to`,
    /// derived from the cluster secret. Directional: `link(s, a, b)` and
    /// `link(s, b, a)` differ.
    pub fn link(secret: &[u8; 32], from: ReplicaId, to: ReplicaId) -> FrameKey {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&(from as u64).to_le_bytes());
        material[8..].copy_from_slice(&(to as u64).to_le_bytes());
        FrameKey(derive_key(secret, b"sc-link", &material))
    }

    /// The fixed, public key used on client connections. Clients do not hold
    /// the cluster secret, so their frames carry an *integrity checksum*
    /// only — client authentication happens where it always has, at the
    /// request-signature layer (the pipeline's verify stage).
    pub fn client() -> FrameKey {
        FrameKey(*b"smartchain-client-frame-checksum")
    }

    fn tag(&self, payload: &[u8]) -> [u8; TAG_BYTES] {
        let mac = hmac_sha256(&self.0, payload);
        let mut tag = [0u8; TAG_BYTES];
        tag.copy_from_slice(&mac[..TAG_BYTES]);
        tag
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, key: &FrameKey, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&key.tag(payload));
    // One write_all per part: the reader reassembles from arbitrary TCP
    // segmentation, so there is no need to coalesce into a single buffer.
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame without verifying its tag (the handshake path, where the
/// key depends on the claimed identity *inside* the payload). Blocks until
/// the full frame arrived — partial delivery and TCP segmentation are
/// handled by the underlying `read_exact` loops.
///
/// # Errors
///
/// `UnexpectedEof` on a torn connection, `InvalidData` on an oversized
/// length prefix, plus any transport error.
pub fn read_frame_raw(r: &mut impl Read) -> io::Result<([u8; TAG_BYTES], Vec<u8>)> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut tag = [0u8; TAG_BYTES];
    tag.copy_from_slice(&header[4..]);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Reads one frame and verifies its tag under `key`.
///
/// # Errors
///
/// `InvalidData` when the tag does not verify (spoofed or corrupted frame),
/// plus everything [`read_frame_raw`] returns.
pub fn read_frame(r: &mut impl Read, key: &FrameKey) -> io::Result<Vec<u8>> {
    let (tag, payload) = read_frame_raw(r)?;
    if !verify_tag(&key.tag(&payload), &tag) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame tag mismatch",
        ));
    }
    Ok(payload)
}

/// The first frame on every connection: who is dialing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hello {
    /// A replica's session handshake, MAC'd under the pairwise link key of
    /// the claimed `(from, to)` pair.
    Peer {
        /// The dialing replica.
        from: ReplicaId,
        /// The view the dialer believes it is in.
        view: u64,
    },
    /// A client connection (integrity-checked only; see
    /// [`FrameKey::client`]).
    Client {
        /// The client's logical id (replies are routed back by it).
        client: u64,
    },
}

const HELLO_PEER: u8 = 1;
const HELLO_CLIENT: u8 = 2;

impl Hello {
    fn encode_payload(&self, me_to: ReplicaId) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        b"sc-hello".as_slice().encode(&mut out);
        match self {
            Hello::Peer { from, view } => {
                HELLO_PEER.encode(&mut out);
                (*from as u64).encode(&mut out);
                (me_to as u64).encode(&mut out);
                view.encode(&mut out);
            }
            Hello::Client { client } => {
                HELLO_CLIENT.encode(&mut out);
                client.encode(&mut out);
            }
        }
        out
    }
}

/// Sends the session handshake for replica `from` dialing replica `to`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_peer_hello(
    w: &mut impl Write,
    secret: &[u8; 32],
    from: ReplicaId,
    to: ReplicaId,
    view: u64,
) -> io::Result<()> {
    let hello = Hello::Peer { from, view };
    let payload = hello.encode_payload(to);
    write_frame(w, &FrameKey::link(secret, from, to), &payload)
}

/// Sends a client handshake.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_client_hello(w: &mut impl Write, client: u64) -> io::Result<()> {
    let hello = Hello::Client { client };
    let payload = hello.encode_payload(0);
    write_frame(w, &FrameKey::client(), &payload)
}

/// Reads and authenticates the handshake frame on an accepted connection.
///
/// A peer hello must (a) address `me`, and (b) carry a tag that verifies
/// under the link key of the pair it *claims* — a dialer without the
/// cluster secret cannot fabricate that, so accepting the claimed id is
/// sound afterwards.
///
/// # Errors
///
/// `InvalidData` for malformed, mis-addressed or spoofed hellos, plus I/O
/// failures.
pub fn read_hello(r: &mut impl Read, secret: &[u8; 32], me: ReplicaId) -> io::Result<Hello> {
    let (tag, payload) = read_frame_raw(r)?;
    let bad = |what: &'static str| io::Error::new(io::ErrorKind::InvalidData, what);
    let mut input = payload.as_slice();
    let magic = Vec::<u8>::decode(&mut input).map_err(|_| bad("hello: no magic"))?;
    if magic != b"sc-hello" {
        return Err(bad("hello: wrong magic"));
    }
    match u8::decode(&mut input).map_err(|_| bad("hello: no kind"))? {
        HELLO_PEER => {
            let from = u64::decode(&mut input).map_err(|_| bad("hello: no sender"))? as usize;
            let to = u64::decode(&mut input).map_err(|_| bad("hello: no receiver"))? as usize;
            let view = u64::decode(&mut input).map_err(|_| bad("hello: no view"))?;
            if to != me {
                return Err(bad("hello: addressed to another replica"));
            }
            let key = FrameKey::link(secret, from, me);
            if !verify_tag(&key.tag(&payload), &tag) {
                return Err(bad("hello: tag mismatch (spoofed identity?)"));
            }
            Ok(Hello::Peer { from, view })
        }
        HELLO_CLIENT => {
            let client = u64::decode(&mut input).map_err(|_| bad("hello: no client id"))?;
            if !verify_tag(&FrameKey::client().tag(&payload), &tag) {
                return Err(bad("hello: client checksum mismatch"));
            }
            Ok(Hello::Client { client })
        }
        _ => Err(bad("hello: unknown kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that returns one byte per call: the cruellest legal TCP
    /// segmentation. Frames must reassemble regardless.
    struct Trickle<'a>(&'a [u8], usize);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.1 >= self.0.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[self.1];
            self.1 += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_roundtrip() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, b"hello frame").unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + 11);
        let got = read_frame(&mut Cursor::new(&buf), &key).unwrap();
        assert_eq!(got, b"hello frame");
    }

    #[test]
    fn frame_survives_byte_at_a_time_delivery() {
        let key = FrameKey::link(&[7u8; 32], 2, 3);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, &[0xabu8; 300]).unwrap();
        write_frame(&mut buf, &key, b"second").unwrap();
        let mut trickle = Trickle(&buf, 0);
        assert_eq!(read_frame(&mut trickle, &key).unwrap(), vec![0xabu8; 300]);
        assert_eq!(read_frame(&mut trickle, &key).unwrap(), b"second");
    }

    #[test]
    fn torn_frame_reports_eof() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, b"will be torn").unwrap();
        // Cut mid-payload and mid-header.
        for cut in [buf.len() - 5, HEADER_BYTES - 2] {
            let err = read_frame(&mut Cursor::new(&buf[..cut]), &key).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let good = FrameKey::link(&[7u8; 32], 0, 1);
        let bad = FrameKey::link(&[8u8; 32], 0, 1); // different cluster secret
        let other_dir = FrameKey::link(&[7u8; 32], 1, 0); // direction matters
        let mut buf = Vec::new();
        write_frame(&mut buf, &good, b"payload").unwrap();
        for key in [bad, other_dir] {
            let err = read_frame(&mut Cursor::new(&buf), &key).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn corrupted_payload_rejected() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(&buf), &key).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = vec![0u8; HEADER_BYTES];
        buf[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame_raw(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn peer_hello_roundtrip() {
        let secret = [9u8; 32];
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &secret, 2, 0, 5).unwrap();
        let hello = read_hello(&mut Cursor::new(&buf), &secret, 0).unwrap();
        assert_eq!(hello, Hello::Peer { from: 2, view: 5 });
    }

    #[test]
    fn spoofed_peer_hello_rejected() {
        // An attacker without the cluster secret claims to be replica 2.
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &[0xeeu8; 32], 2, 0, 0).unwrap();
        let err = read_hello(&mut Cursor::new(&buf), &[9u8; 32], 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn misaddressed_hello_rejected() {
        let secret = [9u8; 32];
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &secret, 2, 1, 0).unwrap();
        // Replica 0 receives a hello addressed to replica 1.
        let err = read_hello(&mut Cursor::new(&buf), &secret, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn client_hello_roundtrip() {
        let mut buf = Vec::new();
        write_client_hello(&mut buf, 0xC0FFEE).unwrap();
        let hello = read_hello(&mut Cursor::new(&buf), &[9u8; 32], 3).unwrap();
        assert_eq!(hello, Hello::Client { client: 0xC0FFEE });
    }
}
