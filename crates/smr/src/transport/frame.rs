//! The shared wire format of the TCP links.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! ┌───────────────┬───────────────┬──────────────────────────────┐
//! │ len: u32 (LE) │ tag: [u8; 4]  │ payload: len bytes           │
//! └───────────────┴───────────────┴──────────────────────────────┘
//! ```
//!
//! The 8-byte header is exactly [`smartchain_codec::FRAME_BYTES`] — the
//! per-message transport overhead the simulator's NIC model has charged all
//! along — and the payload is the message's canonical
//! [`smartchain_codec::Encode`] bytes, so `wire_size()` and the real socket
//! agree byte-for-byte. `tag` is a truncated HMAC-SHA256 over the payload
//! under a *pairwise link key* derived from the cluster secret and the
//! (sender, receiver) pair: a connected peer cannot spoof frames as another
//! replica without that pair's key.
//!
//! The first frame on every connection is a [`Hello`] naming the dialer; its
//! tag is verified under the key of the *claimed* identity, which is what
//! rejects spoofed session handshakes.

use smartchain_codec::{Decode, Encode};
use smartchain_consensus::ReplicaId;
use smartchain_crypto::hmac::{derive_key, verify_tag, HmacKey};
use std::io::{self, Read, Write};

/// Truncated MAC length carried per frame.
pub const TAG_BYTES: usize = 4;
/// Full frame header: length prefix + tag (= `smartchain_codec::FRAME_BYTES`).
pub const HEADER_BYTES: usize = 4 + TAG_BYTES;
/// Frame size sanity cap. State-transfer replies carry whole batch suffixes,
/// so the cap is generous; anything larger is a protocol violation.
pub const MAX_FRAME: usize = 64 << 20;

const _: () = assert!(HEADER_BYTES == smartchain_codec::FRAME_BYTES);

/// A per-direction link authentication key, held with its HMAC schedule
/// precomputed (two compressions saved on every tag and verify — nearly
/// half the per-frame MAC cost at protocol frame sizes).
#[derive(Clone)]
pub struct FrameKey(HmacKey);

impl std::fmt::Debug for FrameKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FrameKey(..)")
    }
}

impl FrameKey {
    /// The key authenticating frames sent by replica `from` to replica `to`,
    /// derived from the cluster secret. Directional: `link(s, a, b)` and
    /// `link(s, b, a)` differ.
    pub fn link(secret: &[u8; 32], from: ReplicaId, to: ReplicaId) -> FrameKey {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&(from as u64).to_le_bytes());
        material[8..].copy_from_slice(&(to as u64).to_le_bytes());
        FrameKey(HmacKey::new(&derive_key(secret, b"sc-link", &material)))
    }

    /// The fixed, public key used on client connections. Clients do not hold
    /// the cluster secret, so their frames carry an *integrity checksum*
    /// only — client authentication happens where it always has, at the
    /// request-signature layer (the pipeline's verify stage).
    pub fn client() -> FrameKey {
        FrameKey(HmacKey::new(b"smartchain-client-frame-checksum"))
    }

    fn tag(&self, payload: &[u8]) -> [u8; TAG_BYTES] {
        let mac = self.0.tag(payload);
        let mut tag = [0u8; TAG_BYTES];
        tag.copy_from_slice(&mac[..TAG_BYTES]);
        tag
    }

    /// Whether `tag` authenticates `payload` under this key (constant-time
    /// compare). The reactor verifies buffered frames with this instead of
    /// the blocking [`read_frame`].
    pub fn verify(&self, payload: &[u8], tag: &[u8; TAG_BYTES]) -> bool {
        verify_tag(&self.tag(payload), tag)
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, key: &FrameKey, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&key.tag(payload));
    // One write_all per part: the reader reassembles from arbitrary TCP
    // segmentation, so there is no need to coalesce into a single buffer.
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Encodes one frame — header plus `msg`'s canonical bytes — into `buf`,
/// reusing its allocation. `buf` is cleared first; on return it holds
/// exactly the bytes [`write_frame`] would have produced. This is the
/// reactor's hot path: the message encodes *directly* into the staging
/// buffer (no intermediate payload `Vec`), the tag is computed over the
/// staged bytes, and the header is backfilled.
///
/// # Errors
///
/// Rejects encoded payloads over [`MAX_FRAME`]; `buf` is left cleared.
pub fn encode_frame_into(buf: &mut Vec<u8>, key: &FrameKey, msg: &impl Encode) -> io::Result<()> {
    buf.clear();
    buf.resize(HEADER_BYTES, 0);
    msg.encode(buf);
    finish_frame(buf, key)
}

/// Encodes one frame around an already-serialized `payload` (the broadcast
/// path: the payload bytes are shared across peers, but each link's key —
/// and therefore tag — differs). Byte-identical to [`write_frame`].
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME`]; `buf` is left cleared.
pub fn encode_frame_payload_into(
    buf: &mut Vec<u8>,
    key: &FrameKey,
    payload: &[u8],
) -> io::Result<()> {
    buf.clear();
    buf.resize(HEADER_BYTES, 0);
    buf.extend_from_slice(payload);
    finish_frame(buf, key)
}

/// The header (length prefix + link tag) for `payload`, without copying the
/// payload anywhere: the encode-once broadcast path tags one shared payload
/// buffer under each per-link key and queues `(header, Arc<[u8]>)` pairs, so
/// only these [`HEADER_BYTES`] differ between peers.
///
/// # Errors
///
/// Rejects payloads over [`MAX_FRAME`].
pub fn frame_header(key: &FrameKey, payload: &[u8]) -> io::Result<[u8; HEADER_BYTES]> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&key.tag(payload));
    Ok(header)
}

/// Backfills the header of a staged frame whose payload sits after the
/// reserved [`HEADER_BYTES`] prefix.
fn finish_frame(buf: &mut Vec<u8>, key: &FrameKey) -> io::Result<()> {
    let payload_len = buf.len() - HEADER_BYTES;
    if payload_len > MAX_FRAME {
        buf.clear();
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    let tag = key.tag(&buf[HEADER_BYTES..]);
    buf[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[4..HEADER_BYTES].copy_from_slice(&tag);
    Ok(())
}

/// Reads one frame without verifying its tag (the handshake path, where the
/// key depends on the claimed identity *inside* the payload). Blocks until
/// the full frame arrived — partial delivery and TCP segmentation are
/// handled by the underlying `read_exact` loops.
///
/// # Errors
///
/// `UnexpectedEof` on a torn connection, `InvalidData` on an oversized
/// length prefix, plus any transport error.
pub fn read_frame_raw(r: &mut impl Read) -> io::Result<([u8; TAG_BYTES], Vec<u8>)> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut tag = [0u8; TAG_BYTES];
    tag.copy_from_slice(&header[4..]);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Reads one frame and verifies its tag under `key`.
///
/// # Errors
///
/// `InvalidData` when the tag does not verify (spoofed or corrupted frame),
/// plus everything [`read_frame_raw`] returns.
pub fn read_frame(r: &mut impl Read, key: &FrameKey) -> io::Result<Vec<u8>> {
    let (tag, payload) = read_frame_raw(r)?;
    if !verify_tag(&key.tag(&payload), &tag) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame tag mismatch",
        ));
    }
    Ok(payload)
}

/// The first frame on every connection: who is dialing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hello {
    /// A replica's session handshake, MAC'd under the pairwise link key of
    /// the claimed `(from, to)` pair.
    Peer {
        /// The dialing replica.
        from: ReplicaId,
        /// The view the dialer believes it is in.
        view: u64,
    },
    /// A client connection (integrity-checked only; see
    /// [`FrameKey::client`]).
    Client {
        /// The client's logical id (replies are routed back by it).
        client: u64,
    },
}

const HELLO_PEER: u8 = 1;
const HELLO_CLIENT: u8 = 2;

impl Hello {
    fn encode_payload(&self, me_to: ReplicaId) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        b"sc-hello".as_slice().encode(&mut out);
        match self {
            Hello::Peer { from, view } => {
                HELLO_PEER.encode(&mut out);
                (*from as u64).encode(&mut out);
                (me_to as u64).encode(&mut out);
                view.encode(&mut out);
            }
            Hello::Client { client } => {
                HELLO_CLIENT.encode(&mut out);
                client.encode(&mut out);
            }
        }
        out
    }
}

/// Sends the session handshake for replica `from` dialing replica `to`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_peer_hello(
    w: &mut impl Write,
    secret: &[u8; 32],
    from: ReplicaId,
    to: ReplicaId,
    view: u64,
) -> io::Result<()> {
    let hello = Hello::Peer { from, view };
    let payload = hello.encode_payload(to);
    write_frame(w, &FrameKey::link(secret, from, to), &payload)
}

/// The session-handshake frame for replica `from` dialing replica `to`, as
/// bytes — the reactor enqueues this on a freshly-connected link instead of
/// blocking in [`write_peer_hello`].
pub fn peer_hello_frame(secret: &[u8; 32], from: ReplicaId, to: ReplicaId, view: u64) -> Vec<u8> {
    let payload = Hello::Peer { from, view }.encode_payload(to);
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    encode_frame_payload_into(&mut buf, &FrameKey::link(secret, from, to), &payload)
        .expect("hello payload is tiny");
    buf
}

/// Sends a client handshake.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_client_hello(w: &mut impl Write, client: u64) -> io::Result<()> {
    let hello = Hello::Client { client };
    let payload = hello.encode_payload(0);
    write_frame(w, &FrameKey::client(), &payload)
}

/// Reads and authenticates the handshake frame on an accepted connection.
///
/// A peer hello must (a) address `me`, and (b) carry a tag that verifies
/// under the link key of the pair it *claims* — a dialer without the
/// cluster secret cannot fabricate that, so accepting the claimed id is
/// sound afterwards.
///
/// # Errors
///
/// `InvalidData` for malformed, mis-addressed or spoofed hellos, plus I/O
/// failures.
pub fn read_hello(r: &mut impl Read, secret: &[u8; 32], me: ReplicaId) -> io::Result<Hello> {
    let (tag, payload) = read_frame_raw(r)?;
    decode_hello(&tag, &payload, secret, me)
}

/// Authenticates an already-buffered handshake frame (the reactor reads
/// frames incrementally, so the raw bytes arrive via [`FrameReader`]
/// rather than a blocking read). Same validation as [`read_hello`].
///
/// [`FrameReader`]: super::reactor::FrameReader
///
/// # Errors
///
/// `InvalidData` for malformed, mis-addressed or spoofed hellos.
pub fn decode_hello(
    tag: &[u8; TAG_BYTES],
    payload: &[u8],
    secret: &[u8; 32],
    me: ReplicaId,
) -> io::Result<Hello> {
    let bad = |what: &'static str| io::Error::new(io::ErrorKind::InvalidData, what);
    let mut input = payload;
    let magic = Vec::<u8>::decode(&mut input).map_err(|_| bad("hello: no magic"))?;
    if magic != b"sc-hello" {
        return Err(bad("hello: wrong magic"));
    }
    match u8::decode(&mut input).map_err(|_| bad("hello: no kind"))? {
        HELLO_PEER => {
            let from = u64::decode(&mut input).map_err(|_| bad("hello: no sender"))? as usize;
            let to = u64::decode(&mut input).map_err(|_| bad("hello: no receiver"))? as usize;
            let view = u64::decode(&mut input).map_err(|_| bad("hello: no view"))?;
            if to != me {
                return Err(bad("hello: addressed to another replica"));
            }
            let key = FrameKey::link(secret, from, me);
            if !verify_tag(&key.tag(payload), tag) {
                return Err(bad("hello: tag mismatch (spoofed identity?)"));
            }
            Ok(Hello::Peer { from, view })
        }
        HELLO_CLIENT => {
            let client = u64::decode(&mut input).map_err(|_| bad("hello: no client id"))?;
            if !verify_tag(&FrameKey::client().tag(payload), tag) {
                return Err(bad("hello: client checksum mismatch"));
            }
            Ok(Hello::Client { client })
        }
        _ => Err(bad("hello: unknown kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that returns one byte per call: the cruellest legal TCP
    /// segmentation. Frames must reassemble regardless.
    struct Trickle<'a>(&'a [u8], usize);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.1 >= self.0.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[self.1];
            self.1 += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_roundtrip() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, b"hello frame").unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + 11);
        let got = read_frame(&mut Cursor::new(&buf), &key).unwrap();
        assert_eq!(got, b"hello frame");
    }

    #[test]
    fn frame_survives_byte_at_a_time_delivery() {
        let key = FrameKey::link(&[7u8; 32], 2, 3);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, &[0xabu8; 300]).unwrap();
        write_frame(&mut buf, &key, b"second").unwrap();
        let mut trickle = Trickle(&buf, 0);
        assert_eq!(read_frame(&mut trickle, &key).unwrap(), vec![0xabu8; 300]);
        assert_eq!(read_frame(&mut trickle, &key).unwrap(), b"second");
    }

    #[test]
    fn torn_frame_reports_eof() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, b"will be torn").unwrap();
        // Cut mid-payload and mid-header.
        for cut in [buf.len() - 5, HEADER_BYTES - 2] {
            let err = read_frame(&mut Cursor::new(&buf[..cut]), &key).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let good = FrameKey::link(&[7u8; 32], 0, 1);
        let bad = FrameKey::link(&[8u8; 32], 0, 1); // different cluster secret
        let other_dir = FrameKey::link(&[7u8; 32], 1, 0); // direction matters
        let mut buf = Vec::new();
        write_frame(&mut buf, &good, b"payload").unwrap();
        for key in [bad, other_dir] {
            let err = read_frame(&mut Cursor::new(&buf), &key).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn corrupted_payload_rejected() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &key, b"payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(&buf), &key).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = vec![0u8; HEADER_BYTES];
        buf[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame_raw(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn peer_hello_roundtrip() {
        let secret = [9u8; 32];
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &secret, 2, 0, 5).unwrap();
        let hello = read_hello(&mut Cursor::new(&buf), &secret, 0).unwrap();
        assert_eq!(hello, Hello::Peer { from: 2, view: 5 });
    }

    #[test]
    fn spoofed_peer_hello_rejected() {
        // An attacker without the cluster secret claims to be replica 2.
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &[0xeeu8; 32], 2, 0, 0).unwrap();
        let err = read_hello(&mut Cursor::new(&buf), &[9u8; 32], 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn misaddressed_hello_rejected() {
        let secret = [9u8; 32];
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &secret, 2, 1, 0).unwrap();
        // Replica 0 receives a hello addressed to replica 1.
        let err = read_hello(&mut Cursor::new(&buf), &secret, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn client_hello_roundtrip() {
        let mut buf = Vec::new();
        write_client_hello(&mut buf, 0xC0FFEE).unwrap();
        let hello = read_hello(&mut Cursor::new(&buf), &[9u8; 32], 3).unwrap();
        assert_eq!(hello, Hello::Client { client: 0xC0FFEE });
    }

    #[test]
    fn encode_into_matches_write_frame_byte_for_byte() {
        let key = FrameKey::link(&[7u8; 32], 1, 2);
        // Representative payload shapes: empty, tiny, multi-kB.
        for payload in [&b""[..], b"x", &[0x5au8; 4096][..]] {
            let mut classic = Vec::new();
            write_frame(&mut classic, &key, payload).unwrap();

            // The Encode-directly path, via a type whose canonical bytes
            // are exactly `payload`.
            struct Raw<'a>(&'a [u8]);
            impl Encode for Raw<'_> {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(self.0);
                }
            }
            let mut staged = vec![0xffu8; 3]; // dirty buffer: must be cleared
            encode_frame_into(&mut staged, &key, &Raw(payload)).unwrap();
            assert_eq!(staged, classic);

            // The pre-serialized-payload path.
            let mut shared = vec![0xffu8; 64];
            encode_frame_payload_into(&mut shared, &key, payload).unwrap();
            assert_eq!(shared, classic);
        }
    }

    #[test]
    fn encode_into_reuses_the_buffer_allocation() {
        let key = FrameKey::client();
        let mut buf = Vec::with_capacity(1024);
        encode_frame_payload_into(&mut buf, &key, &[1u8; 512]).unwrap();
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        encode_frame_payload_into(&mut buf, &key, &[2u8; 256]).unwrap();
        assert_eq!(buf.as_ptr(), ptr, "no realloc for a smaller frame");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn frame_header_plus_payload_matches_write_frame() {
        let key = FrameKey::link(&[7u8; 32], 1, 2);
        for payload in [&b""[..], b"shared", &[0x33u8; 2048][..]] {
            let mut classic = Vec::new();
            write_frame(&mut classic, &key, payload).unwrap();
            let header = frame_header(&key, payload).unwrap();
            let mut split = header.to_vec();
            split.extend_from_slice(payload);
            assert_eq!(split, classic, "header+body must be wire-identical");
        }
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(frame_header(&key, &huge).is_err());
    }

    #[test]
    fn hello_frame_bytes_match_write_peer_hello() {
        let secret = [3u8; 32];
        let mut classic = Vec::new();
        write_peer_hello(&mut classic, &secret, 2, 1, 7).unwrap();
        assert_eq!(peer_hello_frame(&secret, 2, 1, 7), classic);
    }

    #[test]
    fn decode_hello_matches_read_hello() {
        let secret = [9u8; 32];
        let mut buf = Vec::new();
        write_peer_hello(&mut buf, &secret, 2, 0, 5).unwrap();
        let (tag, payload) = read_frame_raw(&mut Cursor::new(&buf)).unwrap();
        let hello = decode_hello(&tag, &payload, &secret, 0).unwrap();
        assert_eq!(hello, Hello::Peer { from: 2, view: 5 });
        // Mis-addressed and spoofed frames still rejected on this path.
        assert!(decode_hello(&tag, &payload, &secret, 1).is_err());
        assert!(decode_hello(&tag, &payload, &[0u8; 32], 0).is_err());
    }

    #[test]
    fn oversized_encode_into_rejected_and_buffer_cleared() {
        let key = FrameKey::client();
        let mut buf = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(encode_frame_payload_into(&mut buf, &key, &huge).is_err());
        assert!(buf.is_empty());
    }
}
