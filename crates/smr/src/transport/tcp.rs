//! The real-socket transport backend: length-framed, HMAC-authenticated
//! TCP links over `std::net`, driven by one poll-based reactor embedded in
//! the replica loop's own thread.
//!
//! Topology: every ordered replica pair `(i → j)` has one connection, dialed
//! by `i` and used only for `i → j` traffic, so there is no tie-breaking and
//! a restarted replica simply redials. All sockets of one replica — the
//! listener, the out-links, every accepted peer and client connection —
//! are owned by a single [`reactor`](super::reactor) that the replica loop
//! drives directly: `send`/`broadcast`/`reply_all` encode frames into
//! pooled buffers inline, and `recv_timeout` runs the poll loop, draining
//! bounded per-connection write queues with vectored writes and surfacing
//! inbound frames as [`NetEvent`]s. No thread is spawned at all: thread
//! count is O(0) per replica beyond the loop itself, not O(connections),
//! so thousands of clients cost file descriptors — not stacks, and not a
//! context switch per frame (the measured bottleneck of the old
//! thread-pair design).
//!
//! Loss model: sends are at-most-once. A torn connection drops whatever was
//! in flight; the reactor redials, emits [`NetEvent::PeerUp`], and the
//! protocol layers re-send what cannot be regenerated (synchronizer state)
//! or repair through `FetchValue`/state transfer. A *full* bounded queue
//! also drops — but never silently: the drop is counted in
//! [`TransportStats`] and, for peer links, a synthetic `PeerUp` fires once
//! the queue drains so the same repair path runs. This is precisely the
//! fair-lossy link the consensus layer already assumes.

use super::frame::{read_frame, write_client_hello, write_frame, FrameKey};
use super::reactor::{FrameReader, Reactor, StatsInner, TransportStats, WriteQueue};
use super::sys::{poll_wait, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};
use super::{NetEvent, RecvError, Transport};
use crate::ordering::SmrMsg;
use crate::types::{Reply, Request};
use smartchain_codec::{from_bytes, to_bytes};
use smartchain_consensus::ReplicaId;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The write half of the reactor's wake pipe plus the dedup flag: any
/// thread can [`WakeHandle::wake`] a poll-blocked replica loop; repeated
/// wakes between two poll returns cost one pipe byte total.
#[derive(Debug)]
struct WakeHandle {
    stream: UnixStream,
    flag: Arc<AtomicBool>,
}

impl WakeHandle {
    fn wake(&self) {
        if !self.flag.swap(true, Ordering::AcqRel) {
            // A full pipe means wake bytes are already pending — safe to
            // drop the write either way.
            let _ = (&self.stream).write(&[1]);
        }
    }
}

/// A cloneable handle that injects [`NetEvent`]s into a running replica
/// loop from any thread — shutdown, test hooks — and wakes the loop's
/// poll so the event is seen promptly.
#[derive(Clone, Debug)]
pub struct Injector {
    tx: Sender<NetEvent>,
    wake: Arc<WakeHandle>,
}

impl Injector {
    /// Queues `event` for the replica loop and wakes its poll. Best
    /// effort: events sent after the transport dropped are discarded.
    pub fn send(&self, event: NetEvent) {
        if self.tx.send(event).is_ok() {
            self.wake.wake();
        }
    }
}

/// Configuration of one replica's TCP transport.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// This replica's id (index into `addrs`).
    pub me: ReplicaId,
    /// Listen/dial addresses of every replica, indexed by id.
    pub addrs: Vec<String>,
    /// Cluster secret that pairwise link keys derive from.
    pub secret: [u8; 32],
    /// View id carried in session handshakes.
    pub view: u64,
    /// Bounded per-connection write queue (frames); sends beyond it are
    /// dropped (at-most-once), counted, and repaired via `PeerUp`.
    pub outbox: usize,
    /// Redial backoff after a failed connect.
    pub reconnect_delay: Duration,
    /// Client admission cap: inbound connections beyond this (plus the
    /// reserved peer slots) are closed at accept.
    pub max_clients: usize,
}

impl TcpConfig {
    /// A config for replica `me` of a cluster at `addrs` under `secret`.
    pub fn new(me: ReplicaId, addrs: Vec<String>, secret: [u8; 32]) -> TcpConfig {
        TcpConfig {
            me,
            addrs,
            secret,
            view: 0,
            outbox: 1024,
            reconnect_delay: Duration::from_millis(50),
            max_clients: 1024,
        }
    }
}

/// The TCP backend for one replica: the reactor that owns every socket,
/// driven in place by whichever thread runs the replica loop.
pub struct TcpTransport {
    me: ReplicaId,
    n: usize,
    reactor: Reactor,
    injected: Receiver<NetEvent>,
    injected_tx: Sender<NetEvent>,
    wake: Arc<WakeHandle>,
    stats: Arc<StatsInner>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds `addrs[me]` and assembles the reactor.
    ///
    /// # Errors
    ///
    /// Fails when the listen address cannot be bound.
    pub fn bind(config: TcpConfig) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(&config.addrs[config.me])?;
        Self::from_listener(config, listener)
    }

    /// Assembles over an already-bound listener (port-0 deployments bind
    /// first, learn the real port, then exchange addresses).
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot be inspected or made non-blocking, or
    /// when the wake pipe cannot be created.
    pub fn from_listener(config: TcpConfig, listener: TcpListener) -> io::Result<TcpTransport> {
        let n = config.addrs.len();
        let me = config.me;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let (injected_tx, injected) = mpsc::channel::<NetEvent>();
        let wake_flag = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let reactor = Reactor::new(
            &config,
            listener,
            wake_rx,
            Arc::clone(&wake_flag),
            Arc::clone(&stats),
        );
        Ok(TcpTransport {
            me,
            n,
            reactor,
            injected,
            injected_tx,
            wake: Arc::new(WakeHandle {
                stream: wake_tx,
                flag: wake_flag,
            }),
            stats,
            local_addr,
        })
    }

    /// The bound listen address (resolves port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can inject events into this transport's replica loop
    /// (shutdown, testing hooks) from any thread.
    pub fn injector(&self) -> Injector {
        Injector {
            tx: self.injected_tx.clone(),
            wake: Arc::clone(&self.wake),
        }
    }

    /// A snapshot of this transport's counters.
    pub fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    /// The live counter cell — snapshot-able after the transport has moved
    /// into its replica thread.
    pub fn stats_handle(&self) -> Arc<StatsInner> {
        Arc::clone(&self.stats)
    }

    /// Tears the transport down, closing every connection it owns.
    pub fn shutdown(self) {}
}

impl Transport for TcpTransport {
    fn me(&self) -> ReplicaId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: ReplicaId, msg: SmrMsg) {
        if to != self.me && to < self.n {
            self.reactor.queue_send(to, &msg);
        }
    }

    fn broadcast(&mut self, msg: &SmrMsg) {
        // The payload is serialized once; only per-link headers/tags differ.
        self.reactor.queue_broadcast(msg);
    }

    fn reply(&mut self, reply: Reply) {
        self.reactor.queue_replies(vec![reply]);
    }

    fn reply_all(&mut self, replies: Vec<Reply>) {
        if !replies.is_empty() {
            self.reactor.queue_replies(replies);
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<NetEvent, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            // Injected events (shutdown) outrank socket traffic; buffered
            // socket events next; only then block in the poll.
            if let Ok(event) = self.injected.try_recv() {
                return Ok(event);
            }
            if let Some(event) = self.reactor.pop_event() {
                return Ok(event);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|r| !r.is_zero())
            else {
                return Err(RecvError::Timeout);
            };
            self.reactor.poll_once(remaining);
        }
    }

    fn try_recv(&mut self) -> Option<NetEvent> {
        if let Ok(event) = self.injected.try_recv() {
            return Some(event);
        }
        if let Some(event) = self.reactor.pop_event() {
            return Some(event);
        }
        self.reactor.poll_once(Duration::ZERO);
        self.reactor.pop_event()
    }
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable address"))
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A TCP client of the replica cluster: one connection per replica, requests
/// broadcast to all, replies tallied to an `f+1` matching quorum.
pub struct TcpClient {
    client_id: u64,
    addrs: Vec<String>,
    conns: Vec<Option<TcpStream>>,
    replies: Receiver<Reply>,
    replies_tx: Sender<Reply>,
    readers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("client_id", &self.client_id)
            .field("replicas", &self.addrs.len())
            .finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Creates a client of the cluster at `addrs`. Connections are
    /// established lazily per send, so a down replica does not block
    /// construction.
    pub fn new(client_id: u64, addrs: Vec<String>) -> TcpClient {
        let (replies_tx, replies) = mpsc::channel();
        let conns = (0..addrs.len()).map(|_| None).collect();
        TcpClient {
            client_id,
            addrs,
            conns,
            replies,
            replies_tx,
            readers: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Ensures a live connection to `replica`, dialing if needed.
    fn ensure_conn(&mut self, replica: ReplicaId) -> Option<&mut TcpStream> {
        if self.conns[replica].is_none() {
            let addr = resolve(&self.addrs[replica]).ok()?;
            let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
            stream.set_nodelay(true).ok();
            write_client_hello(&mut stream, self.client_id).ok()?;
            // Reader for this connection's replies.
            let read_half = stream.try_clone().ok()?;
            let replies_tx = self.replies_tx.clone();
            let stop = Arc::clone(&self.stop);
            self.readers.retain(|h| !h.is_finished());
            self.readers.push(
                std::thread::Builder::new()
                    .name("sc-client-reader".into())
                    .spawn(move || client_reader(read_half, replies_tx, stop))
                    .expect("spawn client reader"),
            );
            self.conns[replica] = Some(stream);
        }
        self.conns[replica].as_mut()
    }

    /// Broadcasts `request` to every replica (best effort).
    pub fn submit(&mut self, request: &Request) {
        let key = FrameKey::client();
        let payload = to_bytes(&SmrMsg::Request(request.clone()));
        for replica in 0..self.addrs.len() {
            let ok = match self.ensure_conn(replica) {
                Some(stream) => write_frame(stream, &key, &payload).is_ok(),
                None => false,
            };
            if !ok {
                self.conns[replica] = None;
            }
        }
    }

    /// Submits `request` and waits for `quorum` matching replies,
    /// retransmitting every 500 ms.
    ///
    /// # Errors
    ///
    /// `TimedOut` when no quorum forms within `deadline`.
    pub fn execute_request(
        &mut self,
        request: Request,
        quorum: usize,
        deadline: Duration,
    ) -> io::Result<Vec<u8>> {
        self.submit(&request);
        let deadline_at = std::time::Instant::now() + deadline;
        let mut tally: HashMap<Vec<u8>, std::collections::HashSet<ReplicaId>> = HashMap::new();
        let mut next_retransmit = std::time::Instant::now() + Duration::from_millis(500);
        loop {
            let now = std::time::Instant::now();
            if now >= deadline_at {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "no reply quorum"));
            }
            if now >= next_retransmit {
                // Lost requests or replies (e.g. a replica restarting) are
                // repaired by client retransmission, as in the paper.
                self.submit(&request);
                next_retransmit = now + Duration::from_millis(500);
            }
            let wait = next_retransmit.min(deadline_at) - now;
            match self.replies.recv_timeout(wait) {
                Ok(reply) if reply.seq == request.seq && reply.client == request.client => {
                    let set = tally.entry(reply.result.clone()).or_default();
                    set.insert(reply.replica);
                    if set.len() >= quorum {
                        return Ok(reply.result);
                    }
                }
                Ok(_) => {}  // stale reply from an earlier operation
                Err(_) => {} // timeout tick: loop re-checks deadline
            }
        }
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for conn in self.conns.iter().flatten() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

fn client_reader(mut stream: TcpStream, replies_tx: Sender<Reply>, stop: Arc<AtomicBool>) {
    let key = FrameKey::client();
    while !stop.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut stream, &key) {
            Ok(p) => p,
            Err(_) => return,
        };
        if let Ok(SmrMsg::Reply(reply)) = from_bytes::<SmrMsg>(&payload) {
            if replies_tx.send(reply).is_err() {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-client driver (poll-based, zero threads)
// ---------------------------------------------------------------------------

/// How often an unanswered request is retransmitted by the pool.
const POOL_RETRANSMIT: Duration = Duration::from_millis(500);

struct PoolConn {
    stream: TcpStream,
    reader: FrameReader,
    wq: WriteQueue,
}

/// Per-result set of replicas that voted for it.
type ReplyTally = HashMap<Vec<u8>, std::collections::HashSet<ReplicaId>>;

struct PoolClient {
    id: u64,
    next_seq: u64,
    completed: u64,
    /// The in-flight request's seq and per-result reply tally.
    in_flight: Option<(u64, ReplyTally)>,
    last_sent: Instant,
    conns: Vec<Option<PoolConn>>,
}

/// Drives many logical clients over nonblocking sockets from a single
/// caller thread — the load-generation side of the 1k-client soak. Where
/// [`TcpClient`] spawns a reader thread per connection, the pool spawns
/// none: every connection of every client is multiplexed over one
/// `poll(2)` set, which is exactly the discipline the replica-side reactor
/// is being tested against.
pub struct TcpClientPool {
    addrs: Vec<String>,
    clients: Vec<PoolClient>,
}

impl std::fmt::Debug for TcpClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClientPool")
            .field("clients", &self.clients.len())
            .field("replicas", &self.addrs.len())
            .finish_non_exhaustive()
    }
}

impl TcpClientPool {
    /// Connects `count` logical clients (ids `first_id..first_id+count`) to
    /// every replica in `addrs`. Failed dials leave holes that requests
    /// simply skip — the quorum tally tolerates missing replicas.
    pub fn connect(addrs: Vec<String>, first_id: u64, count: usize) -> TcpClientPool {
        let now = Instant::now();
        let clients = (0..count as u64)
            .map(|i| {
                let id = first_id + i;
                let conns = (0..addrs.len())
                    .map(|replica| {
                        let addr = resolve(&addrs[replica]).ok()?;
                        let mut stream =
                            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
                        stream.set_nodelay(true).ok();
                        write_client_hello(&mut stream, id).ok()?;
                        stream.set_nonblocking(true).ok()?;
                        Some(PoolConn {
                            stream,
                            reader: FrameReader::new(),
                            wq: WriteQueue::new(64),
                        })
                    })
                    .collect();
                PoolClient {
                    id,
                    next_seq: 1,
                    completed: 0,
                    in_flight: None,
                    last_sent: now,
                    conns,
                }
            })
            .collect();
        TcpClientPool { addrs, clients }
    }

    /// Live connection count (diagnostics).
    pub fn connections(&self) -> usize {
        self.clients
            .iter()
            .map(|c| c.conns.iter().flatten().count())
            .sum()
    }

    /// Runs a closed loop: every client keeps exactly one request in
    /// flight until it has completed `ops_per_client` operations (a
    /// `quorum` of matching replies each), retransmitting unanswered
    /// requests. Returns the total operations completed before `deadline`.
    pub fn run_closed_loop(
        &mut self,
        ops_per_client: u64,
        quorum: usize,
        payload: &[u8],
        deadline: Duration,
    ) -> u64 {
        let deadline_at = Instant::now() + deadline;
        let target = ops_per_client * self.clients.len() as u64;
        loop {
            let now = Instant::now();
            let mut done = 0u64;
            // Issue / retransmit.
            for ci in 0..self.clients.len() {
                let client = &mut self.clients[ci];
                done += client.completed;
                if client.completed >= ops_per_client {
                    continue;
                }
                match &client.in_flight {
                    None => {
                        let seq = client.next_seq;
                        client.next_seq += 1;
                        client.in_flight = Some((seq, HashMap::new()));
                        client.last_sent = now;
                        Self::submit(client, payload, seq);
                    }
                    Some((seq, _)) if now.duration_since(client.last_sent) >= POOL_RETRANSMIT => {
                        let seq = *seq;
                        client.last_sent = now;
                        Self::submit(client, payload, seq);
                    }
                    Some(_) => {}
                }
            }
            if done >= target || now >= deadline_at {
                return done;
            }
            self.pump(deadline_at.min(now + POOL_RETRANSMIT), quorum);
        }
    }

    /// Encodes `seq`'s request once and queues it on every live connection
    /// (the client frame key is shared, so the bytes are identical).
    fn submit(client: &mut PoolClient, payload: &[u8], seq: u64) {
        let request = Request {
            client: client.id,
            seq,
            payload: payload.to_vec(),
            signature: None,
        };
        let mut frame = Vec::new();
        if super::frame::encode_frame_into(
            &mut frame,
            &FrameKey::client(),
            &SmrMsg::Request(request),
        )
        .is_err()
        {
            return;
        }
        for conn in client.conns.iter_mut().flatten() {
            // Full queue: skip — the retransmit timer repairs it.
            let _ = conn.wq.push(frame.clone());
        }
    }

    /// One poll round: flush pending writes, read replies, tally quorums.
    fn pump(&mut self, until: Instant, quorum: usize) {
        // Opportunistic flush before polling.
        for client in &mut self.clients {
            for slot in &mut client.conns {
                if let Some(conn) = slot {
                    if !conn.wq.is_empty() && conn.wq.drain(&mut conn.stream).is_err() {
                        *slot = None;
                    }
                }
            }
        }
        let mut fds = Vec::new();
        let mut index = Vec::new();
        for (ci, client) in self.clients.iter().enumerate() {
            for (ri, conn) in client.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let events = POLLIN | if conn.wq.is_empty() { 0 } else { POLLOUT };
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                index.push((ci, ri));
            }
        }
        if fds.is_empty() {
            return;
        }
        let timeout = until.saturating_duration_since(Instant::now());
        let Ok(ready) = poll_wait(&mut fds, Some(timeout)) else {
            return;
        };
        if ready == 0 {
            return;
        }
        let key = FrameKey::client();
        for (fd, &(ci, ri)) in fds.iter().zip(&index) {
            if fd.revents == 0 {
                continue;
            }
            let client = &mut self.clients[ci];
            let mut replies = Vec::new();
            let mut drop_conn = false;
            {
                let Some(conn) = &mut client.conns[ri] else {
                    continue;
                };
                if fd.revents & POLLOUT != 0 && conn.wq.drain(&mut conn.stream).is_err() {
                    drop_conn = true;
                }
                if !drop_conn && fd.revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                    drop_conn = match conn.reader.fill(&mut conn.stream) {
                        Ok((_, eof)) => eof,
                        Err(_) => true,
                    };
                    loop {
                        match conn.reader.next_frame() {
                            Ok(Some((tag, payload))) if key.verify(&payload, &tag) => {
                                if let Ok(SmrMsg::Reply(reply)) = from_bytes::<SmrMsg>(&payload) {
                                    replies.push(reply);
                                }
                            }
                            Ok(Some(_)) => {}
                            Ok(None) => break,
                            Err(_) => break,
                        }
                    }
                }
            }
            if drop_conn {
                client.conns[ri] = None;
            }
            for reply in replies {
                Self::tally(client, ri, reply, quorum);
            }
        }
    }

    fn tally(client: &mut PoolClient, _replica_conn: usize, reply: Reply, quorum: usize) {
        let Some((seq, tally)) = &mut client.in_flight else {
            return;
        };
        if reply.client != client.id || reply.seq != *seq {
            return; // stale reply from an earlier operation
        }
        let set = tally.entry(reply.result).or_default();
        set.insert(reply.replica);
        if set.len() >= quorum {
            client.in_flight = None;
            client.completed += 1;
        }
    }
}
