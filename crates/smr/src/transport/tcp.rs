//! The real-socket transport backend: length-framed, HMAC-authenticated
//! TCP links over `std::net`.
//!
//! Topology: every ordered replica pair `(i → j)` has one connection, dialed
//! by `i` and used only for `i → j` traffic, so there is no tie-breaking and
//! a restarted replica simply redials. Per peer, a dedicated *writer thread*
//! drains a bounded outbox and owns the dial/redial loop (a slow or dead
//! peer can never wedge the replica loop); *reader threads* are spawned per
//! accepted connection after the [`super::frame::Hello`] handshake
//! authenticates the dialer. Clients connect the same way (integrity-checked
//! framing, no cluster secret) and replies are routed back over the client's
//! own connection.
//!
//! Loss model: sends are at-most-once. A torn connection drops whatever was
//! in flight; the writer redials, emits [`NetEvent::PeerUp`], and the
//! protocol layers re-send what cannot be regenerated (synchronizer state)
//! or repair through `FetchValue`/state transfer. This is precisely the
//! fair-lossy link the consensus layer already assumes.

use super::frame::{
    read_frame, read_hello, write_client_hello, write_frame, write_peer_hello, FrameKey, Hello,
};
use super::{NetEvent, RecvError, Transport};
use crate::ordering::SmrMsg;
use crate::types::{Reply, Request};
use smartchain_codec::{from_bytes, to_bytes};
use smartchain_consensus::ReplicaId;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of one replica's TCP transport.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// This replica's id (index into `addrs`).
    pub me: ReplicaId,
    /// Listen/dial addresses of every replica, indexed by id.
    pub addrs: Vec<String>,
    /// Cluster secret that pairwise link keys derive from.
    pub secret: [u8; 32],
    /// View id carried in session handshakes.
    pub view: u64,
    /// Bounded per-peer outbox; sends beyond it are dropped (at-most-once).
    pub outbox: usize,
    /// Writer redial backoff after a failed connect.
    pub reconnect_delay: Duration,
}

impl TcpConfig {
    /// A config for replica `me` of a cluster at `addrs` under `secret`.
    pub fn new(me: ReplicaId, addrs: Vec<String>, secret: [u8; 32]) -> TcpConfig {
        TcpConfig {
            me,
            addrs,
            secret,
            view: 0,
            outbox: 1024,
            reconnect_delay: Duration::from_millis(50),
        }
    }
}

/// Shared state torn down on shutdown.
struct Shared {
    stop: AtomicBool,
    /// Handles of every live stream (keyed by a registration token), so
    /// shutdown can unblock threads stuck in `read_exact`/`write_all`.
    /// Owning threads deregister on exit or reconnect, so the map stays
    /// bounded across arbitrarily many redials.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_token: AtomicU64,
    /// Client write-halves by client id (replies route here).
    clients: Mutex<HashMap<u64, TcpStream>>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn register(&self, stream: &TcpStream) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().expect("conns lock").insert(token, clone);
        }
        token
    }

    fn deregister(&self, token: u64) {
        self.conns.lock().expect("conns lock").remove(&token);
    }
}

/// The TCP backend for one replica.
pub struct TcpTransport {
    me: ReplicaId,
    n: usize,
    events: Receiver<NetEvent>,
    events_tx: Sender<NetEvent>,
    outboxes: Vec<Option<SyncSender<SmrMsg>>>,
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("n", &self.n)
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Binds `addrs[me]` and boots the acceptor and per-peer writer threads.
    ///
    /// # Errors
    ///
    /// Fails when the listen address cannot be bound.
    pub fn bind(config: TcpConfig) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(&config.addrs[config.me])?;
        Self::from_listener(config, listener)
    }

    /// Boots over an already-bound listener (port-0 deployments bind first,
    /// learn the real port, then exchange addresses).
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot be inspected or made non-blocking.
    pub fn from_listener(config: TcpConfig, listener: TcpListener) -> io::Result<TcpTransport> {
        let n = config.addrs.len();
        let me = config.me;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (events_tx, events) = mpsc::channel::<NetEvent>();
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
            clients: Mutex::new(HashMap::new()),
        });
        let mut threads = Vec::new();
        // Acceptor.
        {
            let shared = Arc::clone(&shared);
            let events_tx = events_tx.clone();
            let secret = config.secret;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sc-accept-{me}"))
                    .spawn(move || accept_loop(listener, me, secret, shared, events_tx))
                    .expect("spawn acceptor"),
            );
        }
        // Per-peer writers.
        let mut outboxes = Vec::with_capacity(n);
        for peer in 0..n {
            if peer == me {
                outboxes.push(None);
                continue;
            }
            let (tx, rx) = mpsc::sync_channel::<SmrMsg>(config.outbox.max(1));
            let shared = Arc::clone(&shared);
            let events_tx = events_tx.clone();
            let config = config.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sc-writer-{me}-{peer}"))
                    .spawn(move || writer_loop(&config, peer, rx, shared, events_tx))
                    .expect("spawn writer"),
            );
            outboxes.push(Some(tx));
        }
        Ok(TcpTransport {
            me,
            n,
            events,
            events_tx,
            outboxes,
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound listen address (resolves port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can inject events into this transport's replica loop
    /// (shutdown, testing hooks).
    pub fn injector(&self) -> Sender<NetEvent> {
        self.events_tx.clone()
    }

    /// Tears the transport down: unblocks and joins every thread, closes
    /// every connection.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for (_, conn) in self.shared.conns.lock().expect("conns lock").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for (_, conn) in self.shared.clients.lock().expect("clients lock").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for slot in &mut self.outboxes {
            *slot = None; // writers see Disconnected
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.teardown();
    }
}

impl Transport for TcpTransport {
    fn me(&self) -> ReplicaId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: ReplicaId, msg: SmrMsg) {
        if let Some(Some(outbox)) = self.outboxes.get(to) {
            match outbox.try_send(msg) {
                Ok(()) => {}
                // Bounded outbox full (peer slow/dead) or writer gone: the
                // message is dropped — at-most-once, repaired upstream.
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }

    fn reply(&mut self, reply: Reply) {
        let key = FrameKey::client();
        let payload = to_bytes(&SmrMsg::Reply(reply.clone()));
        let mut clients = self.shared.clients.lock().expect("clients lock");
        if let Some(stream) = clients.get(&reply.client) {
            // The write timeout set at registration bounds how long a
            // client that stopped reading can stall this (replica-loop)
            // thread. On error — including a timeout's possibly-partial,
            // now-unframeable write — the connection is dropped; the
            // client reconnects and retransmits.
            if write_frame(&mut &*stream, &key, &payload).is_err() {
                if let Some(dead) = clients.remove(&reply.client) {
                    let _ = dead.shutdown(Shutdown::Both);
                }
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<NetEvent, RecvError> {
        self.events.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    fn try_recv(&mut self) -> Option<NetEvent> {
        self.events.try_recv().ok()
    }
}

/// Accepts connections, authenticates their hello, and spawns one reader
/// thread per connection.
fn accept_loop(
    listener: TcpListener,
    me: ReplicaId,
    secret: [u8; 32],
    shared: Arc<Shared>,
    events_tx: Sender<NetEvent>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies and serve-side protocol traffic leave over this
                // stream; Nagle would add tens of ms to every one of them.
                stream.set_nodelay(true).ok();
                let shared = Arc::clone(&shared);
                let events_tx = events_tx.clone();
                readers.retain(|h| !h.is_finished());
                readers.push(
                    std::thread::Builder::new()
                        .name(format!("sc-reader-{me}"))
                        .spawn(move || reader_loop(stream, me, secret, shared, events_tx))
                        .expect("spawn reader"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    for h in readers {
        let _ = h.join();
    }
}

/// Reads one authenticated connection until EOF/error. Handles both peer
/// sessions (after a verified hello) and client sessions.
fn reader_loop(
    mut stream: TcpStream,
    me: ReplicaId,
    secret: [u8; 32],
    shared: Arc<Shared>,
    events_tx: Sender<NetEvent>,
) {
    let token = shared.register(&stream);
    run_reader(&mut stream, me, secret, &shared, &events_tx);
    shared.deregister(token);
}

fn run_reader(
    stream: &mut TcpStream,
    me: ReplicaId,
    secret: [u8; 32],
    shared: &Shared,
    events_tx: &Sender<NetEvent>,
) {
    // A dialer that never completes its handshake must not pin the reader
    // forever; frames after the handshake arrive at protocol pace, so the
    // timeout is lifted once the session is authenticated.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let hello = match read_hello(stream, &secret, me) {
        Ok(h) => h,
        Err(_) => return, // spoofed, malformed, or timed out: drop the link
    };
    let _ = stream.set_read_timeout(None);
    match hello {
        Hello::Peer { from, .. } => {
            // The peer (re)dialed us: its send path was torn, so whatever we
            // owed it on *our* path may also need repair — surface the event.
            let _ = events_tx.send(NetEvent::PeerUp(from));
            let key = FrameKey::link(&secret, from, me);
            loop {
                let payload = match read_frame(stream, &key) {
                    Ok(p) => p,
                    Err(_) => return, // torn connection or spoofed frame
                };
                let Ok(msg) = from_bytes::<SmrMsg>(&payload) else {
                    return; // authenticated peers do not send garbage
                };
                if events_tx.send(NetEvent::Peer { from, msg }).is_err() {
                    return;
                }
            }
        }
        Hello::Client { client } => {
            if let Ok(write_half) = stream.try_clone() {
                // Replies are written from the replica-loop thread; a
                // client that stops reading must cost it at most this
                // bound, never a wedge (see `TcpTransport::reply`).
                let _ = write_half.set_write_timeout(Some(Duration::from_millis(250)));
                shared
                    .clients
                    .lock()
                    .expect("clients lock")
                    .insert(client, write_half);
            }
            let key = FrameKey::client();
            loop {
                let payload = match read_frame(stream, &key) {
                    Ok(p) => p,
                    Err(_) => return,
                };
                // Clients may only submit requests; anything else on a
                // client connection is dropped.
                match from_bytes::<SmrMsg>(&payload) {
                    Ok(SmrMsg::Request(req)) => {
                        if events_tx.send(NetEvent::Client(req)).is_err() {
                            return;
                        }
                    }
                    _ => continue,
                }
            }
        }
    }
}

/// Owns the `me → peer` connection: dials (and redials) the peer, drains the
/// bounded outbox, writes frames. A failed write retries once on a fresh
/// connection, then drops the message.
fn writer_loop(
    config: &TcpConfig,
    peer: ReplicaId,
    rx: Receiver<SmrMsg>,
    shared: Arc<Shared>,
    events_tx: Sender<NetEvent>,
) {
    let key = FrameKey::link(&config.secret, config.me, peer);
    let mut conn: Option<(TcpStream, u64)> = None;
    let mut pending: Option<Vec<u8>> = None;
    let mut retried = false;
    while !shared.stopping() {
        if pending.is_none() {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(msg) => {
                    pending = Some(to_bytes(&msg));
                    retried = false;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        if conn.is_none() {
            match dial(config, peer) {
                Ok(stream) => {
                    let token = shared.register(&stream);
                    conn = Some((stream, token));
                    // Fresh link: tell the replica loop so it can re-send
                    // unrecoverable protocol state to this peer.
                    let _ = events_tx.send(NetEvent::PeerUp(peer));
                }
                Err(_) => {
                    std::thread::sleep(config.reconnect_delay);
                    continue;
                }
            }
        }
        let (stream, token) = conn.as_mut().expect("connected");
        let payload = pending.as_deref().expect("pending frame");
        match write_frame(stream, &key, payload) {
            Ok(()) => {
                pending = None;
                retried = false;
            }
            Err(_) => {
                // Torn connection: redial and retry this one message once.
                shared.deregister(*token);
                conn = None;
                if retried {
                    pending = None;
                }
                retried = true;
            }
        }
    }
    if let Some((_, token)) = conn {
        shared.deregister(token);
    }
}

/// Dials `peer`, completes the session handshake, and returns the stream.
fn dial(config: &TcpConfig, peer: ReplicaId) -> io::Result<TcpStream> {
    let addr = resolve(&config.addrs[peer])?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
    stream.set_nodelay(true).ok();
    write_peer_hello(&mut stream, &config.secret, config.me, peer, config.view)?;
    Ok(stream)
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable address"))
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// A TCP client of the replica cluster: one connection per replica, requests
/// broadcast to all, replies tallied to an `f+1` matching quorum.
pub struct TcpClient {
    client_id: u64,
    addrs: Vec<String>,
    conns: Vec<Option<TcpStream>>,
    replies: Receiver<Reply>,
    replies_tx: Sender<Reply>,
    readers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("client_id", &self.client_id)
            .field("replicas", &self.addrs.len())
            .finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Creates a client of the cluster at `addrs`. Connections are
    /// established lazily per send, so a down replica does not block
    /// construction.
    pub fn new(client_id: u64, addrs: Vec<String>) -> TcpClient {
        let (replies_tx, replies) = mpsc::channel();
        let conns = (0..addrs.len()).map(|_| None).collect();
        TcpClient {
            client_id,
            addrs,
            conns,
            replies,
            replies_tx,
            readers: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Ensures a live connection to `replica`, dialing if needed.
    fn ensure_conn(&mut self, replica: ReplicaId) -> Option<&mut TcpStream> {
        if self.conns[replica].is_none() {
            let addr = resolve(&self.addrs[replica]).ok()?;
            let mut stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
            stream.set_nodelay(true).ok();
            write_client_hello(&mut stream, self.client_id).ok()?;
            // Reader for this connection's replies.
            let read_half = stream.try_clone().ok()?;
            let replies_tx = self.replies_tx.clone();
            let stop = Arc::clone(&self.stop);
            self.readers.retain(|h| !h.is_finished());
            self.readers.push(
                std::thread::Builder::new()
                    .name("sc-client-reader".into())
                    .spawn(move || client_reader(read_half, replies_tx, stop))
                    .expect("spawn client reader"),
            );
            self.conns[replica] = Some(stream);
        }
        self.conns[replica].as_mut()
    }

    /// Broadcasts `request` to every replica (best effort).
    pub fn submit(&mut self, request: &Request) {
        let key = FrameKey::client();
        let payload = to_bytes(&SmrMsg::Request(request.clone()));
        for replica in 0..self.addrs.len() {
            let ok = match self.ensure_conn(replica) {
                Some(stream) => write_frame(stream, &key, &payload).is_ok(),
                None => false,
            };
            if !ok {
                self.conns[replica] = None;
            }
        }
    }

    /// Submits `request` and waits for `quorum` matching replies,
    /// retransmitting every 500 ms.
    ///
    /// # Errors
    ///
    /// `TimedOut` when no quorum forms within `deadline`.
    pub fn execute_request(
        &mut self,
        request: Request,
        quorum: usize,
        deadline: Duration,
    ) -> io::Result<Vec<u8>> {
        self.submit(&request);
        let deadline_at = std::time::Instant::now() + deadline;
        let mut tally: HashMap<Vec<u8>, std::collections::HashSet<ReplicaId>> = HashMap::new();
        let mut next_retransmit = std::time::Instant::now() + Duration::from_millis(500);
        loop {
            let now = std::time::Instant::now();
            if now >= deadline_at {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "no reply quorum"));
            }
            if now >= next_retransmit {
                // Lost requests or replies (e.g. a replica restarting) are
                // repaired by client retransmission, as in the paper.
                self.submit(&request);
                next_retransmit = now + Duration::from_millis(500);
            }
            let wait = next_retransmit.min(deadline_at) - now;
            match self.replies.recv_timeout(wait) {
                Ok(reply) if reply.seq == request.seq && reply.client == request.client => {
                    let set = tally.entry(reply.result.clone()).or_default();
                    set.insert(reply.replica);
                    if set.len() >= quorum {
                        return Ok(reply.result);
                    }
                }
                Ok(_) => {}  // stale reply from an earlier operation
                Err(_) => {} // timeout tick: loop re-checks deadline
            }
        }
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for conn in self.conns.iter().flatten() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

fn client_reader(mut stream: TcpStream, replies_tx: Sender<Reply>, stop: Arc<AtomicBool>) {
    let key = FrameKey::client();
    while !stop.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut stream, &key) {
            Ok(p) => p,
            Err(_) => return,
        };
        if let Ok(SmrMsg::Reply(reply)) = from_bytes::<SmrMsg>(&payload) {
            if replies_tx.send(reply).is_err() {
                return;
            }
        }
    }
}
