//! The deployment descriptor of a multi-process cluster (`cluster.toml`):
//! member addresses plus the cluster secret. Everything else a process needs
//! — pairwise link keys, deterministic per-replica consensus keys, the view
//! — derives from these two, so one small file bootstraps every replica and
//! client identically.
//!
//! The parser covers exactly the subset the descriptor uses (comments,
//! `key = value`, quoted strings, one-line string arrays); the workspace
//! builds without external crates, TOML libraries included.

use crate::transport::tcp::TcpConfig;
use smartchain_crypto::hmac::derive_key;
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_crypto::{hex, unhex};

/// A parsed `cluster.toml`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Listen/dial address of every replica, indexed by replica id.
    pub replicas: Vec<String>,
    /// The cluster secret (32 bytes, hex in the file). Pairwise link keys
    /// and per-replica consensus keys derive from it.
    pub secret: [u8; 32],
    /// Maximum requests per proposed batch.
    pub max_batch: usize,
    /// Checkpoint period in batches.
    pub checkpoint_period: u64,
    /// Progress timeout (milliseconds) before a leader change.
    pub progress_timeout_ms: u64,
    /// Reject unsigned client requests. Defaults to `true`: on an open TCP
    /// surface an unsigned request lets any network peer forge another
    /// client's `(client, seq)` and poison its duplicate filter.
    pub require_signed: bool,
    /// Client admission cap per replica: inbound connections beyond this
    /// (plus the reserved peer slots) are closed at accept.
    pub max_clients: usize,
}

impl ClusterConfig {
    /// A descriptor for `replicas` with the given secret and defaults
    /// matching `RuntimeConfig`.
    pub fn new(replicas: Vec<String>, secret: [u8; 32]) -> ClusterConfig {
        ClusterConfig {
            replicas,
            secret,
            max_batch: 64,
            checkpoint_period: 128,
            progress_timeout_ms: 500,
            require_signed: true,
            max_clients: 1024,
        }
    }

    /// Parses the descriptor.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed input.
    pub fn parse(text: &str) -> Result<ClusterConfig, String> {
        let mut replicas: Option<Vec<String>> = None;
        let mut secret: Option<[u8; 32]> = None;
        let mut max_batch = 64usize;
        let mut checkpoint_period = 128u64;
        let mut progress_timeout_ms = 500u64;
        let mut require_signed = true;
        let mut max_clients = 1024usize;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "replicas" => replicas = Some(parse_string_array(value, lineno + 1)?),
                "secret" => {
                    let bytes = unhex(parse_string(value, lineno + 1)?.as_str())
                        .ok_or_else(|| format!("line {}: secret is not hex", lineno + 1))?;
                    let arr: [u8; 32] = bytes
                        .try_into()
                        .map_err(|_| format!("line {}: secret must be 32 bytes", lineno + 1))?;
                    secret = Some(arr);
                }
                "max_batch" => {
                    max_batch = value
                        .parse()
                        .map_err(|_| format!("line {}: bad max_batch", lineno + 1))?;
                }
                "checkpoint_period" => {
                    checkpoint_period = value
                        .parse()
                        .map_err(|_| format!("line {}: bad checkpoint_period", lineno + 1))?;
                }
                "progress_timeout_ms" => {
                    progress_timeout_ms = value
                        .parse()
                        .map_err(|_| format!("line {}: bad progress_timeout_ms", lineno + 1))?;
                }
                "require_signed" => {
                    require_signed = value
                        .parse()
                        .map_err(|_| format!("line {}: bad require_signed", lineno + 1))?;
                }
                "max_clients" => {
                    max_clients = value
                        .parse()
                        .map_err(|_| format!("line {}: bad max_clients", lineno + 1))?;
                }
                other => return Err(format!("line {}: unknown key `{other}`", lineno + 1)),
            }
        }
        let replicas = replicas.ok_or("missing `replicas`")?;
        if replicas.len() < 4 {
            return Err(format!(
                "need at least 4 replicas for f = 1 (got {})",
                replicas.len()
            ));
        }
        Ok(ClusterConfig {
            replicas,
            secret: secret.ok_or("missing `secret`")?,
            max_batch,
            checkpoint_period,
            progress_timeout_ms,
            require_signed,
            max_clients,
        })
    }

    /// Renders the descriptor back to `cluster.toml` form.
    pub fn to_toml(&self) -> String {
        let addrs: Vec<String> = self.replicas.iter().map(|a| format!("\"{a}\"")).collect();
        format!(
            "# SmartChain multi-process cluster descriptor.\n\
             replicas = [{}]\n\
             secret = \"{}\"\n\
             max_batch = {}\n\
             checkpoint_period = {}\n\
             progress_timeout_ms = {}\n\
             require_signed = {}\n\
             max_clients = {}\n",
            addrs.join(", "),
            hex(&self.secret),
            self.max_batch,
            self.checkpoint_period,
            self.progress_timeout_ms,
            self.require_signed,
            self.max_clients,
        )
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Tolerated faults (`⌊(n−1)/3⌋`).
    pub fn f(&self) -> usize {
        (self.n() - 1) / 3
    }

    /// The transport config for replica `me`.
    pub fn tcp_config(&self, me: usize) -> TcpConfig {
        let mut config = TcpConfig::new(me, self.replicas.clone(), self.secret);
        config.max_clients = self.max_clients;
        config
    }

    /// Replica `id`'s consensus key, derived deterministically from the
    /// cluster secret — every process (replica or client) computes the same
    /// view without any key exchange. Multi-process deployments must use
    /// [`Backend::Ed25519`]: the Sim backend's verification registry is
    /// process-local.
    pub fn replica_secret(&self, id: usize, backend: Backend) -> SecretKey {
        let seed = derive_key(&self.secret, b"sc-consensus", &(id as u64).to_le_bytes());
        SecretKey::from_seed(backend, &seed)
    }

    /// The genesis view over the derived consensus keys.
    pub fn view(&self, backend: Backend) -> smartchain_consensus::View {
        smartchain_consensus::View {
            id: 0,
            members: (0..self.n())
                .map(|i| self.replica_secret(i, backend).public_key())
                .collect(),
        }
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {lineno}: expected a quoted string"))
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    if !(v.starts_with('[') && v.ends_with(']')) {
        return Err(format!("line {lineno}: expected a [..] array"));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_toml() {
        let config = ClusterConfig::new(
            (0..4).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect(),
            [0x42; 32],
        );
        let text = config.to_toml();
        let back = ClusterConfig::parse(&text).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn parses_comments_and_spacing() {
        let text = r#"
            # a comment
            replicas = [ "a:1", "b:2", "c:3" , "d:4" ]  # trailing comment
            secret = "0000000000000000000000000000000000000000000000000000000000000000"
            max_batch = 7
        "#;
        let config = ClusterConfig::parse(text).unwrap();
        assert_eq!(config.replicas.len(), 4);
        assert_eq!(config.max_batch, 7);
        assert_eq!(config.checkpoint_period, 128, "default survives");
        assert_eq!(config.max_clients, 1024, "default survives");
    }

    #[test]
    fn max_clients_reaches_the_transport_config() {
        let mut config = ClusterConfig::new(vec!["w:1".into(); 4], [9; 32]);
        config.max_clients = 3;
        assert_eq!(config.tcp_config(0).max_clients, 3);
        let back = ClusterConfig::parse(&config.to_toml()).unwrap();
        assert_eq!(back.max_clients, 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ClusterConfig::parse("replicas = [\"a\"]").is_err(), "n < 4");
        assert!(ClusterConfig::parse("secret = \"zz\"").is_err());
        assert!(ClusterConfig::parse("what = ever").is_err());
        assert!(ClusterConfig::parse("junk line").is_err());
    }

    #[test]
    fn derived_views_agree_across_instances() {
        let a = ClusterConfig::new(vec!["w".into(); 4], [9; 32]);
        let b = ClusterConfig::new(vec!["w".into(); 4], [9; 32]);
        assert_eq!(
            a.view(Backend::Ed25519).members,
            b.view(Backend::Ed25519).members,
            "two processes parsing the same descriptor derive the same view"
        );
        assert_ne!(
            a.replica_secret(0, Backend::Ed25519).public_key(),
            a.replica_secret(1, Backend::Ed25519).public_key()
        );
    }
}
