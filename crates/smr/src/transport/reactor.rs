//! The event loop behind [`super::tcp::TcpTransport`]: one poll-driven
//! reactor per replica owning every peer and client socket — running
//! *inside* the replica loop's thread, not beside it.
//!
//! The previous backend spent a reader/writer thread pair per connection;
//! at 1k clients that is 2k+ threads and a context switch per frame. Here
//! a single reactor multiplexes everything over `poll(2)`:
//!
//! * nonblocking accept with an admission cap (peer slots are reserved, so
//!   a client flood cannot lock replicas out) and accept backoff;
//! * per-connection [`FrameReader`]s that reassemble frames from arbitrary
//!   TCP segmentation without blocking — torn frames simply wait in the
//!   buffer for the next readable event;
//! * per-connection bounded [`WriteQueue`]s drained with vectored writes,
//!   coalescing every frame queued since the last wakeup into few syscalls;
//!   a slow client fills only its own queue (drops counted), never the
//!   replica loop;
//! * demand-driven nonblocking dials for the `me → peer` out-links with
//!   the same redial/[`NetEvent::PeerUp`] semantics the writer threads had,
//!   plus overflow repair: an outbox overflow (silent drop in the old
//!   backend) now surfaces a synthetic `PeerUp` once the queue drains, so
//!   the synchronizer re-sends what was lost.
//!
//! The replica loop drives the reactor directly: `send`/`broadcast`/
//! `reply_all` encode frames into the bounded queues inline, and
//! `recv_timeout` runs [`Reactor::poll_once`], which flushes queues, polls
//! every socket, and buffers inbound [`NetEvent`]s for the loop to pop.
//! No cross-thread handoff happens anywhere on the frame path — the
//! measured cost of the old design was exactly those per-frame context
//! switches. The only concurrency left is a one-byte wake pipe
//! (deduplicated by an atomic flag) so *other* threads — the cluster
//! harness injecting `Shutdown`, tests — can interrupt a blocking poll.

use super::frame::{
    decode_hello, encode_frame_into, frame_header, peer_hello_frame, FrameKey, Hello, HEADER_BYTES,
    MAX_FRAME, TAG_BYTES,
};
use super::sys::{
    connect_nonblocking, poll_wait, take_socket_error, Dial, PollFd, POLLERR, POLLHUP, POLLIN,
    POLLNVAL, POLLOUT,
};
use super::tcp::TcpConfig;
use super::NetEvent;
use crate::ordering::SmrMsg;
use crate::types::Reply;
use smartchain_codec::from_bytes;
use smartchain_consensus::ReplicaId;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Incremental frame reading
// ---------------------------------------------------------------------------

/// Read chunk size per `read(2)`.
const READ_CHUNK: usize = 64 * 1024;

/// Reassembles length-prefixed frames from a nonblocking stream. Bytes
/// accumulate across arbitrarily-torn reads (`EAGAIN` mid-frame included);
/// complete frames pop off the front.
///
/// Reads land in a reusable scratch block and only the bytes actually
/// received are appended to the reassembly buffer — the naive
/// `resize(len + CHUNK, 0)` pattern memsets 64 KiB per readable event,
/// which at protocol frame sizes costs more than the read itself.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
    scratch: Box<[u8; READ_CHUNK]>,
}

impl Default for FrameReader {
    fn default() -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            scratch: Box::new([0u8; READ_CHUNK]),
        }
    }
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads everything currently available from `r` (stopping at
    /// `WouldBlock`). Returns `(bytes_read, saw_eof)`.
    ///
    /// # Errors
    ///
    /// Propagates hard I/O failures; `WouldBlock` and `Interrupted` are
    /// absorbed.
    pub fn fill(&mut self, r: &mut impl Read) -> io::Result<(u64, bool)> {
        self.compact();
        let mut total = 0u64;
        loop {
            match r.read(&mut self.scratch[..]) {
                Ok(0) => return Ok((total, true)),
                Ok(n) => {
                    self.buf.extend_from_slice(&self.scratch[..n]);
                    total += n as u64;
                    // A short read usually means the socket buffer is
                    // drained; under level-triggered poll it is safe to
                    // stop here either way.
                    if n < READ_CHUNK {
                        return Ok((total, false));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok((total, false));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an oversized length prefix (protocol violation —
    /// the connection should be dropped).
    pub fn next_frame(&mut self) -> io::Result<Option<([u8; TAG_BYTES], Vec<u8>)>> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length exceeds MAX_FRAME",
            ));
        }
        if avail.len() < HEADER_BYTES + len {
            return Ok(None);
        }
        let mut tag = [0u8; TAG_BYTES];
        tag.copy_from_slice(&avail[4..HEADER_BYTES]);
        let payload = avail[HEADER_BYTES..HEADER_BYTES + len].to_vec();
        self.start += HEADER_BYTES + len;
        Ok(Some((tag, payload)))
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded, pooled write queues with vectored drains
// ---------------------------------------------------------------------------

/// Max frames handed to one `writev` call (kernel `IOV_MAX` is 1024; 64
/// already amortizes the syscall completely for protocol-sized frames).
const MAX_IOVECS: usize = 64;
/// Buffers above this size are not recycled into the pool — one state
/// transfer must not pin megabytes per connection forever.
const POOL_MAX_BUF: usize = 256 * 1024;
/// Recycled buffers kept per queue.
const POOL_MAX_LEN: usize = 32;

/// Per-call outcome of [`WriteQueue::drain`], fed into [`StatsInner`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainStats {
    /// `writev` syscalls issued.
    pub writev_calls: u64,
    /// Frames fully written.
    pub frames: u64,
    /// Bytes written.
    pub bytes: u64,
}

/// One queued outbound frame.
///
/// Unicast traffic owns its bytes (header and payload staged contiguously in
/// a pooled buffer). Broadcast traffic is *shared*: the payload was encoded
/// once into an `Arc<[u8]>` that every peer's queue references, and only the
/// [`HEADER_BYTES`] header — whose truncated HMAC tag depends on the link
/// key — is per-queue. The vectored drain stitches header and body together
/// on the wire, so the receiver cannot tell the two apart.
#[derive(Debug)]
pub enum Frame {
    /// A frame staged whole in one buffer (header + payload).
    Owned(Vec<u8>),
    /// A per-link header over a payload buffer shared across queues.
    Shared {
        /// Length prefix + per-link tag for `body`.
        header: [u8; HEADER_BYTES],
        /// The encode-once payload, shared with every other peer's queue.
        body: Arc<[u8]>,
    },
}

impl Frame {
    /// Total wire bytes of this frame.
    fn len(&self) -> usize {
        match self {
            Frame::Owned(buf) => buf.len(),
            Frame::Shared { body, .. } => HEADER_BYTES + body.len(),
        }
    }
}

/// A bounded queue of encoded frames awaiting a writable socket, with a
/// small buffer pool so steady-state traffic allocates nothing.
#[derive(Debug)]
pub struct WriteQueue {
    q: VecDeque<Frame>,
    /// Bytes of `q[0]` already written (partial vectored writes resume here).
    head_off: usize,
    cap: usize,
    pool: Vec<Vec<u8>>,
}

impl WriteQueue {
    /// A queue admitting at most `cap` frames (minimum 1).
    pub fn new(cap: usize) -> WriteQueue {
        WriteQueue {
            q: VecDeque::new(),
            head_off: 0,
            cap: cap.max(1),
            pool: Vec::new(),
        }
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// A cleared buffer to encode the next frame into — pooled if possible.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() <= POOL_MAX_BUF && self.pool.len() < POOL_MAX_LEN {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Enqueues an encoded frame. Returns `false` — and recycles the
    /// buffer — when the queue is at capacity (the caller counts the drop).
    pub fn push(&mut self, frame: Vec<u8>) -> bool {
        if self.q.len() >= self.cap {
            self.recycle(frame);
            return false;
        }
        self.q.push_back(Frame::Owned(frame));
        true
    }

    /// Enqueues a shared-payload frame (the encode-once broadcast path):
    /// this queue stores only the per-link `header` and a reference to the
    /// payload encoded once for all peers. Returns `false` at capacity.
    pub fn push_shared(&mut self, header: [u8; HEADER_BYTES], body: Arc<[u8]>) -> bool {
        if self.q.len() >= self.cap {
            return false;
        }
        self.q.push_back(Frame::Shared { header, body });
        true
    }

    /// Enqueues at the *front*, bypassing the cap — session hellos must go
    /// out first even on a queue that filled while disconnected.
    pub fn push_front(&mut self, frame: Vec<u8>) {
        debug_assert_eq!(self.head_off, 0, "push_front under a partial write");
        self.q.push_front(Frame::Owned(frame));
    }

    /// Forgets partial-write progress: on a fresh connection the current
    /// head frame is resent from byte 0 (the old connection died, so the
    /// receiver never saw the partial bytes; duplicates are handled by
    /// protocol-level dedup anyway).
    pub fn reset_partial(&mut self) {
        self.head_off = 0;
    }

    /// Writes as much as `w` accepts via vectored writes, coalescing up to
    /// [`MAX_IOVECS`] frames per syscall. Stops cleanly at `WouldBlock`.
    ///
    /// # Errors
    ///
    /// Propagates hard write failures (including `Ok(0)` as `WriteZero`);
    /// the connection should be torn down and `reset_partial` called before
    /// reuse.
    pub fn drain(&mut self, w: &mut impl Write) -> io::Result<DrainStats> {
        let mut stats = DrainStats::default();
        loop {
            if self.q.is_empty() {
                return Ok(stats);
            }
            // A shared frame contributes up to two slices (detached header,
            // then the shared body); stop one slice short of the cap so
            // either shape still fits.
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.q.len().min(MAX_IOVECS));
            for (i, frame) in self.q.iter().enumerate() {
                if slices.len() + 1 >= MAX_IOVECS {
                    break;
                }
                let off = if i == 0 { self.head_off } else { 0 };
                match frame {
                    Frame::Owned(buf) => slices.push(IoSlice::new(&buf[off..])),
                    Frame::Shared { header, body } => {
                        if off < HEADER_BYTES {
                            slices.push(IoSlice::new(&header[off..]));
                            slices.push(IoSlice::new(body));
                        } else {
                            // Partial write stopped inside the body.
                            slices.push(IoSlice::new(&body[off - HEADER_BYTES..]));
                        }
                    }
                }
            }
            match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection accepted zero bytes",
                    ));
                }
                Ok(mut n) => {
                    stats.writev_calls += 1;
                    stats.bytes += n as u64;
                    while n > 0 {
                        let head_remaining = self.q[0].len() - self.head_off;
                        if n >= head_remaining {
                            n -= head_remaining;
                            let done = self.q.pop_front().expect("head exists");
                            self.head_off = 0;
                            stats.frames += 1;
                            if let Frame::Owned(buf) = done {
                                self.recycle(buf);
                            }
                        } else {
                            self.head_off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(stats),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Shared transport counters, updated by the reactor thread and snapshotted
/// from anywhere via [`StatsInner::snapshot`].
#[derive(Debug, Default)]
pub struct StatsInner {
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    writev_calls: AtomicU64,
    writev_frames: AtomicU64,
    broadcast_msgs: AtomicU64,
    broadcast_payload_encodes: AtomicU64,
    queue_full_drops: AtomicU64,
    accept_rejections: AtomicU64,
    handshake_failures: AtomicU64,
    peer_reconnects: AtomicU64,
    clients_connected: AtomicU64,
}

impl StatsInner {
    fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    fn drained(&self, d: &DrainStats) {
        self.add(&self.writev_calls, d.writev_calls);
        self.add(&self.writev_frames, d.frames);
        self.add(&self.frames_out, d.frames);
        self.add(&self.bytes_out, d.bytes);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> TransportStats {
        let get = |f: &AtomicU64| f.load(Ordering::Relaxed);
        TransportStats {
            frames_in: get(&self.frames_in),
            frames_out: get(&self.frames_out),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            writev_calls: get(&self.writev_calls),
            writev_frames: get(&self.writev_frames),
            broadcast_msgs: get(&self.broadcast_msgs),
            broadcast_payload_encodes: get(&self.broadcast_payload_encodes),
            queue_full_drops: get(&self.queue_full_drops),
            accept_rejections: get(&self.accept_rejections),
            handshake_failures: get(&self.handshake_failures),
            peer_reconnects: get(&self.peer_reconnects),
            clients_connected: get(&self.clients_connected),
        }
    }
}

/// A snapshot of one transport's counters (see [`StatsInner`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Authenticated frames received (peer and client).
    pub frames_in: u64,
    /// Frames fully written to sockets.
    pub frames_out: u64,
    /// Payload+header bytes received.
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Vectored-write syscalls issued.
    pub writev_calls: u64,
    /// Frames completed via those syscalls (`writev_frames / writev_calls`
    /// = average coalesce size).
    pub writev_frames: u64,
    /// Peer broadcasts issued by the replica loop.
    pub broadcast_msgs: u64,
    /// Payload serializations those broadcasts cost. With the encode-once
    /// fan-out this tracks `broadcast_msgs` one-to-one — *not* once per
    /// peer — because every peer queue shares the same payload buffer.
    pub broadcast_payload_encodes: u64,
    /// Frames dropped because a bounded write queue was full (slow peer or
    /// client throttled — never silent any more).
    pub queue_full_drops: u64,
    /// Inbound connections closed by the admission cap.
    pub accept_rejections: u64,
    /// Connections dropped for failed/expired/spoofed handshakes.
    pub handshake_failures: u64,
    /// Successful out-link (re)connects.
    pub peer_reconnects: u64,
    /// Currently-registered client connections (gauge).
    pub clients_connected: u64,
}

impl TransportStats {
    /// Average frames coalesced per vectored write.
    pub fn avg_coalesce(&self) -> f64 {
        if self.writev_calls == 0 {
            0.0
        } else {
            self.writev_frames as f64 / self.writev_calls as f64
        }
    }

    /// Average payload serializations per broadcast (≈ 1.0 with the
    /// encode-once fan-out; the pre-sharing transport paid one *copy* per
    /// peer on top of the encode).
    pub fn encodes_per_broadcast(&self) -> f64 {
        if self.broadcast_msgs == 0 {
            0.0
        } else {
            self.broadcast_payload_encodes as f64 / self.broadcast_msgs as f64
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

/// How long an in-flight nonblocking dial may take before it is abandoned.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// How long an accepted connection may sit without completing its hello.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept pause after an admission-cap rejection (prevents accept-storm
/// spin while the cluster is saturated).
const ACCEPT_BACKOFF: Duration = Duration::from_millis(25);
/// Poll timeout when no timer is pending.
const IDLE_POLL: Duration = Duration::from_millis(500);

/// State of one demand-dialed `me → peer` out-link.
enum PeerState {
    /// No connection; dial when there is something to send and
    /// `redial_at` has passed.
    Idle,
    /// Nonblocking connect in flight (awaiting `POLLOUT`).
    Connecting {
        stream: TcpStream,
        deadline: Instant,
    },
    /// Live, handshake queued/sent.
    Connected { stream: TcpStream },
}

struct PeerLink {
    state: PeerState,
    wq: WriteQueue,
    key: FrameKey,
    /// At least one frame was dropped on a full queue since the last
    /// (re)connect or drain — emit a synthetic `PeerUp` when the queue
    /// next empties so the synchronizer re-sends what was lost.
    overflowed: bool,
    redial_at: Instant,
}

/// What an accepted connection turned out to be.
enum ConnKind {
    /// Hello not yet received.
    Pending { deadline: Instant },
    /// Authenticated inbound peer link (`peer → me` traffic only).
    PeerIn { from: ReplicaId, key: Box<FrameKey> },
    /// A client connection; replies route back over it.
    Client { id: u64 },
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    kind: ConnKind,
    wq: WriteQueue,
}

/// What a poll-set entry refers to.
#[derive(Clone, Copy)]
enum Target {
    Wake,
    Listener,
    Peer(usize),
    Conn(u64),
}

pub(super) struct Reactor {
    me: ReplicaId,
    n: usize,
    addrs: Vec<String>,
    secret: [u8; 32],
    view: u64,
    outbox: usize,
    reconnect_delay: Duration,
    max_clients: usize,
    listener: TcpListener,
    wake_rx: UnixStream,
    wake_flag: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    client_key: FrameKey,
    peers: Vec<Option<PeerLink>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// client id → connection token (latest hello wins).
    clients: HashMap<u64, u64>,
    accept_paused_until: Option<Instant>,
    /// Inbound events awaiting pickup by the replica loop.
    ready: VecDeque<NetEvent>,
    /// Pollset scratch, reused across [`Reactor::poll_once`] calls so a
    /// thousand connections do not mean a thousand-entry allocation per
    /// poll.
    pollfds: Vec<PollFd>,
    poll_targets: Vec<Target>,
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "unresolvable address"))
}

impl Reactor {
    pub(super) fn new(
        config: &TcpConfig,
        listener: TcpListener,
        wake_rx: UnixStream,
        wake_flag: Arc<AtomicBool>,
        stats: Arc<StatsInner>,
    ) -> Reactor {
        let n = config.addrs.len();
        let now = Instant::now();
        let peers = (0..n)
            .map(|peer| {
                (peer != config.me).then(|| PeerLink {
                    state: PeerState::Idle,
                    wq: WriteQueue::new(config.outbox),
                    key: FrameKey::link(&config.secret, config.me, peer),
                    overflowed: false,
                    redial_at: now,
                })
            })
            .collect();
        Reactor {
            me: config.me,
            n,
            addrs: config.addrs.clone(),
            secret: config.secret,
            view: config.view,
            outbox: config.outbox,
            reconnect_delay: config.reconnect_delay,
            max_clients: config.max_clients,
            listener,
            wake_rx,
            wake_flag,
            stats,
            client_key: FrameKey::client(),
            peers,
            conns: HashMap::new(),
            next_token: 0,
            clients: HashMap::new(),
            accept_paused_until: None,
            ready: VecDeque::new(),
            pollfds: Vec::new(),
            poll_targets: Vec::new(),
        }
    }

    /// Inbound connection budget: every client slot plus one reserved slot
    /// per remote peer, so a client flood cannot lock replicas out.
    fn max_inbound(&self) -> usize {
        self.max_clients + self.n.saturating_sub(1)
    }

    fn emit(&mut self, event: NetEvent) {
        self.ready.push_back(event);
    }

    /// Pops the next buffered inbound event, if any.
    pub(super) fn pop_event(&mut self) -> Option<NetEvent> {
        self.ready.pop_front()
    }

    /// One turn of the event loop: run timers, flush pending writes, then
    /// block in `poll(2)` for at most `max_wait` (capped further by the
    /// nearest timer) and dispatch whatever readiness came back. Inbound
    /// frames land in the `ready` queue for [`Reactor::pop_event`].
    pub(super) fn poll_once(&mut self, max_wait: Duration) {
        let now = Instant::now();
        self.run_timers(now);
        self.flush_all();
        if !self.ready.is_empty() {
            // Timers/flushes produced events (overflow repair, PeerUp):
            // hand them to the caller before sleeping on the pollset.
            return;
        }
        self.build_pollset();
        let timeout = self.next_timeout(Instant::now()).min(max_wait);
        let mut fds = std::mem::take(&mut self.pollfds);
        let targets = std::mem::take(&mut self.poll_targets);
        let polled = poll_wait(&mut fds, Some(timeout));
        if matches!(polled, Ok(n) if n > 0) {
            for (fd, target) in fds.iter().zip(&targets) {
                if fd.revents == 0 {
                    continue;
                }
                match *target {
                    Target::Wake => self.handle_wake(),
                    Target::Listener => self.accept_ready(),
                    Target::Peer(idx) => self.peer_event(idx, fd.revents),
                    Target::Conn(token) => self.conn_event(token, fd.revents),
                }
            }
        }
        // Return the scratch buffers for the next call.
        self.pollfds = fds;
        self.poll_targets = targets;
    }

    // -- frame intake from the replica loop --------------------------------

    /// Queues `msg` for one peer (encoded under the link key).
    pub(super) fn queue_send(&mut self, to: ReplicaId, msg: &SmrMsg) {
        self.queue_peer_msg(to, msg);
    }

    /// Queues `msg` for every peer, encode-once: the payload is serialized
    /// into one shared `Arc<[u8]>` and every peer's queue references that
    /// same buffer — only the 8-byte per-link header (length + truncated
    /// HMAC tag under the pairwise key) is computed per peer.
    pub(super) fn queue_broadcast(&mut self, msg: &SmrMsg) {
        let payload = smartchain_codec::to_shared_bytes(msg);
        self.stats.add(&self.stats.broadcast_msgs, 1);
        self.stats.add(&self.stats.broadcast_payload_encodes, 1);
        for to in 0..self.n {
            if to != self.me {
                self.queue_peer_shared(to, &payload);
            }
        }
    }

    /// Queues a decided batch's replies onto their clients' connections.
    pub(super) fn queue_replies(&mut self, replies: Vec<Reply>) {
        for reply in replies {
            self.queue_reply(reply);
        }
    }

    fn handle_wake(&mut self) {
        // Clear the dedup flag *before* draining the pipe so a sender
        // racing with us either sees the flag clear (and writes a fresh
        // wake byte) or its byte is already in the pipe we drain below.
        self.wake_flag.store(false, Ordering::Release);
        let mut scratch = [0u8; 64];
        while matches!(self.wake_rx.read(&mut scratch), Ok(n) if n > 0) {}
    }

    fn queue_peer_msg(&mut self, to: ReplicaId, msg: &SmrMsg) {
        let Some(Some(link)) = self.peers.get_mut(to) else {
            return;
        };
        let mut buf = link.wq.take_buf();
        if encode_frame_into(&mut buf, &link.key, msg).is_err() || !link.wq.push(buf) {
            self.stats.add(&self.stats.queue_full_drops, 1);
            link.overflowed = true;
        }
    }

    fn queue_peer_shared(&mut self, to: ReplicaId, payload: &Arc<[u8]>) {
        let Some(Some(link)) = self.peers.get_mut(to) else {
            return;
        };
        let queued = match frame_header(&link.key, payload) {
            Ok(header) => link.wq.push_shared(header, Arc::clone(payload)),
            Err(_) => false,
        };
        if !queued {
            self.stats.add(&self.stats.queue_full_drops, 1);
            link.overflowed = true;
        }
    }

    fn queue_reply(&mut self, reply: Reply) {
        let Some(&token) = self.clients.get(&reply.client) else {
            return; // client gone; it will retransmit elsewhere
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut buf = conn.wq.take_buf();
        let msg = SmrMsg::Reply(reply);
        if encode_frame_into(&mut buf, &self.client_key, &msg).is_err() || !conn.wq.push(buf) {
            // Slow client: only *its* queue fills, only *its* replies drop.
            self.stats.add(&self.stats.queue_full_drops, 1);
        }
    }

    // -- timers ------------------------------------------------------------

    fn run_timers(&mut self, now: Instant) {
        for idx in 0..self.peers.len() {
            let Some(link) = &mut self.peers[idx] else {
                continue;
            };
            match &link.state {
                PeerState::Idle => {
                    if !link.wq.is_empty() && now >= link.redial_at {
                        self.start_dial(idx, now);
                    }
                }
                PeerState::Connecting { deadline, .. } => {
                    if now >= *deadline {
                        link.state = PeerState::Idle;
                        link.redial_at = now + self.reconnect_delay;
                    }
                }
                PeerState::Connected { .. } => {}
            }
        }
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(token, conn)| match conn.kind {
                ConnKind::Pending { deadline } if now >= deadline => Some(*token),
                _ => None,
            })
            .collect();
        for token in expired {
            self.stats.add(&self.stats.handshake_failures, 1);
            self.close_conn(token);
        }
        if matches!(self.accept_paused_until, Some(t) if now >= t) {
            self.accept_paused_until = None;
        }
    }

    fn next_timeout(&self, now: Instant) -> Duration {
        let mut deadline: Option<Instant> = None;
        let mut consider = |t: Instant| match deadline {
            Some(d) if d <= t => {}
            _ => deadline = Some(t),
        };
        for link in self.peers.iter().flatten() {
            match &link.state {
                PeerState::Idle if !link.wq.is_empty() => consider(link.redial_at),
                PeerState::Connecting { deadline, .. } => consider(*deadline),
                _ => {}
            }
        }
        for conn in self.conns.values() {
            if let ConnKind::Pending { deadline } = conn.kind {
                consider(deadline);
            }
        }
        if let Some(t) = self.accept_paused_until {
            consider(t);
        }
        match deadline {
            Some(t) => t.saturating_duration_since(now).min(IDLE_POLL),
            None => IDLE_POLL,
        }
    }

    // -- out-links ---------------------------------------------------------

    fn start_dial(&mut self, idx: usize, now: Instant) {
        let addr = match resolve(&self.addrs[idx]) {
            Ok(a) => a,
            Err(_) => {
                if let Some(link) = &mut self.peers[idx] {
                    link.redial_at = now + self.reconnect_delay;
                }
                return;
            }
        };
        match connect_nonblocking(&addr) {
            Ok(Dial::Connected(fd)) => self.finish_connect(idx, TcpStream::from(fd)),
            Ok(Dial::InProgress(fd)) => {
                if let Some(link) = &mut self.peers[idx] {
                    link.state = PeerState::Connecting {
                        stream: TcpStream::from(fd),
                        deadline: now + CONNECT_TIMEOUT,
                    };
                }
            }
            Err(_) => {
                if let Some(link) = &mut self.peers[idx] {
                    link.redial_at = now + self.reconnect_delay;
                }
            }
        }
    }

    fn finish_connect(&mut self, idx: usize, stream: TcpStream) {
        let hello = peer_hello_frame(&self.secret, self.me, idx, self.view);
        if let Some(link) = &mut self.peers[idx] {
            stream.set_nodelay(true).ok();
            // The old connection (if any) died mid-frame at worst: resend
            // the head frame whole, hello first.
            link.wq.reset_partial();
            link.wq.push_front(hello);
            link.state = PeerState::Connected { stream };
            // A fresh link makes queued-then-dropped traffic repairable via
            // the PeerUp below; don't double-signal.
            link.overflowed = false;
        }
        self.stats.add(&self.stats.peer_reconnects, 1);
        self.emit(NetEvent::PeerUp(idx));
        self.flush_peer(idx);
    }

    fn teardown_peer(&mut self, idx: usize) {
        if let Some(link) = &mut self.peers[idx] {
            link.state = PeerState::Idle;
            link.redial_at = Instant::now() + self.reconnect_delay;
            link.wq.reset_partial();
        }
    }

    fn peer_event(&mut self, idx: usize, revents: i16) {
        let Some(link) = &mut self.peers[idx] else {
            return;
        };
        match &mut link.state {
            PeerState::Idle => {}
            PeerState::Connecting { stream, .. } => {
                if revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0 {
                    match take_socket_error(stream.as_raw_fd()) {
                        Ok(()) if revents & POLLOUT != 0 => {
                            let PeerState::Connecting { stream, .. } =
                                std::mem::replace(&mut link.state, PeerState::Idle)
                            else {
                                unreachable!()
                            };
                            self.finish_connect(idx, stream);
                        }
                        _ => self.teardown_peer(idx),
                    }
                }
            }
            PeerState::Connected { stream } => {
                if revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0 {
                    // The out-link is one-directional: readable means EOF
                    // (peer died/restarted) or stray bytes we discard.
                    let mut scratch = [0u8; 4096];
                    loop {
                        match stream.read(&mut scratch) {
                            Ok(0) => {
                                self.teardown_peer(idx);
                                return;
                            }
                            Ok(_) => {}
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                self.teardown_peer(idx);
                                return;
                            }
                        }
                    }
                }
                if revents & POLLOUT != 0 {
                    self.flush_peer(idx);
                }
            }
        }
    }

    fn flush_peer(&mut self, idx: usize) {
        let Some(link) = &mut self.peers[idx] else {
            return;
        };
        let PeerState::Connected { stream } = &mut link.state else {
            return;
        };
        match link.wq.drain(stream) {
            Ok(d) => {
                self.stats.drained(&d);
                if link.wq.is_empty() && link.overflowed {
                    link.overflowed = false;
                    // Everything still queued made it out, but earlier
                    // frames were dropped on the floor: tell the replica
                    // loop so the synchronizer re-sends protocol state.
                    self.emit(NetEvent::PeerUp(idx));
                }
            }
            Err(_) => self.teardown_peer(idx),
        }
    }

    // -- inbound connections -----------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.max_inbound() {
                        // At capacity: close immediately and pause accepts
                        // briefly so a flood does not spin the loop.
                        self.stats.add(&self.stats.accept_rejections, 1);
                        self.accept_paused_until = Some(Instant::now() + ACCEPT_BACKOFF);
                        drop(stream);
                        return;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            reader: FrameReader::new(),
                            kind: ConnKind::Pending {
                                deadline: Instant::now() + HANDSHAKE_TIMEOUT,
                            },
                            wq: WriteQueue::new(self.outbox),
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: u64, revents: i16) {
        if revents & POLLNVAL != 0 {
            self.close_conn(token);
            return;
        }
        if revents & (POLLIN | POLLHUP | POLLERR) != 0 {
            self.conn_readable(token);
        }
        if revents & POLLOUT != 0 {
            self.flush_conn(token);
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let mut frames = Vec::new();
        let mut close;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            close = match conn.reader.fill(&mut conn.stream) {
                Ok((bytes, eof)) => {
                    self.stats.add(&self.stats.bytes_in, bytes);
                    eof
                }
                Err(_) => true,
            };
            loop {
                match conn.reader.next_frame() {
                    Ok(Some(frame)) => frames.push(frame),
                    Ok(None) => break,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
        }
        for (tag, payload) in frames {
            if !self.on_frame(token, &tag, &payload) {
                close = true;
                break;
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Processes one complete frame. Returns `false` when the connection
    /// must be dropped (spoofed tag, garbage from a peer, bad hello).
    fn on_frame(&mut self, token: u64, tag: &[u8; TAG_BYTES], payload: &[u8]) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        match &conn.kind {
            ConnKind::Pending { .. } => match decode_hello(tag, payload, &self.secret, self.me) {
                Ok(Hello::Peer { from, .. }) if from < self.n && from != self.me => {
                    conn.kind = ConnKind::PeerIn {
                        from,
                        key: Box::new(FrameKey::link(&self.secret, from, self.me)),
                    };
                    // The peer (re)dialed us: whatever we owed it on *our*
                    // out-link may also need repair — surface the event.
                    self.emit(NetEvent::PeerUp(from));
                    true
                }
                Ok(Hello::Client { client }) => {
                    conn.kind = ConnKind::Client { id: client };
                    // Latest hello wins: a reconnecting client's replies
                    // must route to its new connection.
                    self.clients.insert(client, token);
                    self.stats
                        .clients_connected
                        .store(self.clients.len() as u64, Ordering::Relaxed);
                    true
                }
                _ => {
                    self.stats.add(&self.stats.handshake_failures, 1);
                    false
                }
            },
            ConnKind::PeerIn { from, key } => {
                let from = *from;
                if !key.verify(payload, tag) {
                    return false; // spoofed or corrupted: drop the link
                }
                let Ok(msg) = from_bytes::<SmrMsg>(payload) else {
                    return false; // authenticated peers do not send garbage
                };
                self.stats.add(&self.stats.frames_in, 1);
                self.emit(NetEvent::Peer { from, msg });
                true
            }
            ConnKind::Client { .. } => {
                if !self.client_key.verify(payload, tag) {
                    return false;
                }
                self.stats.add(&self.stats.frames_in, 1);
                // Clients may only submit requests; anything else on a
                // client connection is ignored.
                if let Ok(SmrMsg::Request(req)) = from_bytes::<SmrMsg>(payload) {
                    self.emit(NetEvent::Client(req));
                }
                true
            }
        }
    }

    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.wq.drain(&mut conn.stream) {
            Ok(d) => self.stats.drained(&d),
            Err(_) => self.close_conn(token),
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if let ConnKind::Client { id } = conn.kind {
                // Only unmap if this is still the client's live connection.
                if self.clients.get(&id) == Some(&token) {
                    self.clients.remove(&id);
                    self.stats
                        .clients_connected
                        .store(self.clients.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    // -- poll-set assembly -------------------------------------------------

    fn flush_all(&mut self) {
        for idx in 0..self.peers.len() {
            let flush = matches!(
                &self.peers[idx],
                Some(link) if !link.wq.is_empty()
                    && matches!(link.state, PeerState::Connected { .. })
            );
            if flush {
                self.flush_peer(idx);
            }
        }
        let pending: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(t, c)| (!c.wq.is_empty()).then_some(*t))
            .collect();
        for token in pending {
            self.flush_conn(token);
        }
    }

    fn build_pollset(&mut self) {
        let fds = &mut self.pollfds;
        let targets = &mut self.poll_targets;
        fds.clear();
        targets.clear();
        fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
        targets.push(Target::Wake);
        // The listener stays in the set even at the admission cap: over-cap
        // connections are actively closed (and counted) rather than left in
        // the backlog, with `ACCEPT_BACKOFF` pacing a sustained flood.
        if self.accept_paused_until.is_none() {
            fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
            targets.push(Target::Listener);
        }
        for (idx, link) in self.peers.iter().enumerate() {
            let Some(link) = link else { continue };
            let (fd, events) = match &link.state {
                PeerState::Idle => continue,
                PeerState::Connecting { stream, .. } => (stream.as_raw_fd(), POLLOUT),
                PeerState::Connected { stream } => (
                    stream.as_raw_fd(),
                    POLLIN | if link.wq.is_empty() { 0 } else { POLLOUT },
                ),
            };
            fds.push(PollFd::new(fd, events));
            targets.push(Target::Peer(idx));
        }
        for (token, conn) in &self.conns {
            let events = POLLIN | if conn.wq.is_empty() { 0 } else { POLLOUT };
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            targets.push(Target::Conn(*token));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::frame::write_frame;

    /// A reader that yields scripted chunks, interleaving `WouldBlock`
    /// between them — a socket delivering a frame across many readable
    /// events, torn at arbitrary byte boundaries.
    struct ChunkedReader {
        chunks: Vec<Vec<u8>>,
        next: usize,
        served_since_block: bool,
    }

    impl ChunkedReader {
        fn new(bytes: &[u8], chunk: usize) -> ChunkedReader {
            ChunkedReader {
                chunks: bytes.chunks(chunk.max(1)).map(<[u8]>::to_vec).collect(),
                next: 0,
                served_since_block: false,
            }
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.chunks.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "drained"));
            }
            if self.served_since_block {
                // One chunk per readable event: EAGAIN until re-polled.
                self.served_since_block = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"));
            }
            let chunk = &self.chunks[self.next];
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            if n == chunk.len() {
                self.next += 1;
            } else {
                self.chunks[self.next].drain(..n);
            }
            self.served_since_block = true;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_reassembles_across_eagain_boundaries() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let mut wire = Vec::new();
        write_frame(&mut wire, &key, &[0xabu8; 300]).unwrap();
        write_frame(&mut wire, &key, b"second").unwrap();
        // 7-byte chunks tear the header itself, not just the payload.
        let mut src = ChunkedReader::new(&wire, 7);
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        // Each fill() models one POLLIN wakeup.
        for _ in 0..wire.len() {
            reader.fill(&mut src).unwrap();
            while let Some((tag, payload)) = reader.next_frame().unwrap() {
                assert!(key.verify(&payload, &tag));
                frames.push(payload);
            }
            if frames.len() == 2 {
                break;
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], vec![0xabu8; 300]);
        assert_eq!(frames[1], b"second");
    }

    #[test]
    fn frame_reader_rejects_oversized_length_prefix() {
        let mut reader = FrameReader::new();
        let mut bogus = vec![0u8; HEADER_BYTES];
        bogus[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut src = ChunkedReader::new(&bogus, 64);
        reader.fill(&mut src).unwrap();
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn frame_reader_reports_eof() {
        struct Eof;
        impl Read for Eof {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
        }
        let (n, eof) = FrameReader::new().fill(&mut Eof).unwrap();
        assert_eq!(n, 0);
        assert!(eof);
    }

    /// A writer that accepts at most `budget` bytes per call — the kernel
    /// returning short vectored writes under socket-buffer pressure — and
    /// `WouldBlock`s after `calls_before_block` calls.
    struct ShortWriter {
        written: Vec<u8>,
        budget: usize,
        calls: usize,
        block_after: usize,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            if self.calls >= self.block_after {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            self.calls += 1;
            let mut left = self.budget;
            for buf in bufs {
                let n = buf.len().min(left);
                self.written.extend_from_slice(&buf[..n]);
                left -= n;
                if left == 0 {
                    break;
                }
            }
            Ok(self.budget - left)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_short_vectored_writes() {
        let mut wq = WriteQueue::new(16);
        let frames: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 100 + i as usize]).collect();
        for f in &frames {
            assert!(wq.push(f.clone()));
        }
        let expected: Vec<u8> = frames.concat();
        // 37-byte budget: every call ends mid-frame.
        let mut w = ShortWriter {
            written: Vec::new(),
            budget: 37,
            calls: 0,
            block_after: 3,
        };
        let d = wq.drain(&mut w).unwrap();
        assert_eq!(d.writev_calls, 3);
        assert_eq!(d.bytes, 111);
        assert!(!wq.is_empty(), "blocked mid-queue");
        // Next POLLOUT: the rest goes out, resuming mid-frame.
        w.block_after = usize::MAX;
        let d2 = wq.drain(&mut w).unwrap();
        assert!(wq.is_empty());
        assert_eq!(d.frames + d2.frames, 5);
        assert_eq!(w.written, expected, "byte stream intact across partials");
    }

    #[test]
    fn write_queue_enforces_cap_and_reports_drops() {
        let mut wq = WriteQueue::new(2);
        assert!(wq.push(vec![1]));
        assert!(wq.push(vec![2]));
        assert!(!wq.push(vec![3]), "cap reached: push reports the drop");
        assert_eq!(wq.len(), 2);
        // push_front (session hello) bypasses the cap.
        wq.push_front(vec![0]);
        assert_eq!(wq.len(), 3);
        let mut w = ShortWriter {
            written: Vec::new(),
            budget: usize::MAX,
            calls: 0,
            block_after: usize::MAX,
        };
        wq.drain(&mut w).unwrap();
        assert_eq!(w.written, vec![0, 1, 2], "hello first, dropped frame gone");
    }

    #[test]
    fn write_queue_reset_partial_resends_head_frame_whole() {
        let mut wq = WriteQueue::new(4);
        wq.push(vec![9u8; 50]);
        let mut w = ShortWriter {
            written: Vec::new(),
            budget: 20,
            calls: 0,
            block_after: 1,
        };
        wq.drain(&mut w).unwrap(); // 20 of 50 bytes out, connection dies
        wq.reset_partial();
        let mut w2 = ShortWriter {
            written: Vec::new(),
            budget: usize::MAX,
            calls: 0,
            block_after: usize::MAX,
        };
        wq.drain(&mut w2).unwrap();
        assert_eq!(
            w2.written,
            vec![9u8; 50],
            "fresh connection gets the whole frame"
        );
    }

    #[test]
    fn shared_frames_drain_byte_identical_to_write_frame() {
        // One payload allocation serves three links; each queue's drained
        // bytes must match what write_frame would have produced under that
        // link's key.
        let payload: Arc<[u8]> = Arc::from(&[0x42u8; 500][..]);
        let keys: Vec<FrameKey> = (1..4).map(|to| FrameKey::link(&[7u8; 32], 0, to)).collect();
        let mut queues: Vec<WriteQueue> = Vec::new();
        for key in &keys {
            let mut wq = WriteQueue::new(8);
            let header = frame_header(key, &payload).unwrap();
            assert!(wq.push_shared(header, Arc::clone(&payload)));
            queues.push(wq);
        }
        // 3 queue references + the local handle: zero payload copies made.
        assert_eq!(Arc::strong_count(&payload), 4);
        for (key, wq) in keys.iter().zip(&mut queues) {
            let mut classic = Vec::new();
            write_frame(&mut classic, key, &payload).unwrap();
            let mut w = ShortWriter {
                written: Vec::new(),
                budget: usize::MAX,
                calls: 0,
                block_after: usize::MAX,
            };
            let d = wq.drain(&mut w).unwrap();
            assert_eq!(d.frames, 1);
            assert_eq!(w.written, classic, "shared frame wire-identical");
        }
    }

    #[test]
    fn shared_frame_survives_partial_writes_mid_header_and_mid_body() {
        let key = FrameKey::link(&[7u8; 32], 0, 1);
        let payload: Arc<[u8]> = Arc::from(&[0x17u8; 200][..]);
        let mut classic = Vec::new();
        write_frame(&mut classic, &key, &payload).unwrap();
        // 3-byte budget: the first drain tears inside the 8-byte header;
        // later drains tear inside the body; mixed with owned frames after.
        let mut wq = WriteQueue::new(8);
        wq.push_shared(frame_header(&key, &payload).unwrap(), payload);
        wq.push(classic.clone()); // an owned copy rides behind the shared one
        let mut w = ShortWriter {
            written: Vec::new(),
            budget: 3,
            calls: 0,
            block_after: 1,
        };
        while !wq.is_empty() {
            w.block_after = w.calls + 1; // one syscall per simulated POLLOUT
            wq.drain(&mut w).unwrap();
        }
        let expected: Vec<u8> = classic.iter().chain(&classic).copied().collect();
        assert_eq!(w.written, expected, "byte stream intact across partials");
    }

    #[test]
    fn write_queue_recycles_buffers() {
        let mut wq = WriteQueue::new(4);
        let mut buf = wq.take_buf();
        buf.extend_from_slice(&[1, 2, 3]);
        let ptr = buf.as_ptr();
        wq.push(buf);
        let mut w = ShortWriter {
            written: Vec::new(),
            budget: usize::MAX,
            calls: 0,
            block_after: usize::MAX,
        };
        wq.drain(&mut w).unwrap();
        let reused = wq.take_buf();
        assert_eq!(reused.as_ptr(), ptr, "drained buffer returns via the pool");
        assert!(reused.is_empty());
    }

    #[test]
    fn write_queue_treats_zero_write_as_error() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wq = WriteQueue::new(4);
        wq.push(vec![1, 2, 3]);
        assert!(wq.drain(&mut Zero).is_err());
    }
}
