//! The in-process transport backend: one unbounded std `mpsc` channel per
//! replica, exactly the links the original `LocalCluster` hardwired. Kept as
//! the default backend (tests, demos, single-machine embeddings) and as the
//! behavioral reference the TCP backend is measured against.

use super::{NetEvent, RecvError, Transport};
use crate::ordering::SmrMsg;
use crate::types::Reply;
use smartchain_consensus::ReplicaId;
use std::sync::mpsc::{self, Receiver, Sender};
use std::time::Duration;

/// The channel backend for one replica.
pub struct ChannelTransport {
    me: ReplicaId,
    rx: Receiver<NetEvent>,
    peers: Vec<Sender<NetEvent>>,
    replies: Sender<Reply>,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("me", &self.me)
            .field("n", &self.peers.len())
            .finish_non_exhaustive()
    }
}

/// The cluster-side handle of a channel mesh: per-replica injection senders
/// (client requests, shutdown, crash simulation) and the shared reply
/// stream.
pub struct ChannelMeshHandle {
    /// One inbox sender per replica. Replacing a sender with a fresh,
    /// disconnected one "crashes" that replica's links.
    pub inboxes: Vec<Sender<NetEvent>>,
    /// Replies from every replica (clients tally quorums here).
    pub replies: Receiver<Reply>,
}

/// Builds a fully-connected channel mesh for `n` replicas.
pub fn channel_mesh(n: usize) -> (Vec<ChannelTransport>, ChannelMeshHandle) {
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let mut inboxes = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel::<NetEvent>();
        inboxes.push(tx);
        receivers.push(rx);
    }
    let transports = receivers
        .into_iter()
        .enumerate()
        .map(|(me, rx)| ChannelTransport {
            me,
            rx,
            peers: inboxes.clone(),
            replies: reply_tx.clone(),
        })
        .collect();
    (
        transports,
        ChannelMeshHandle {
            inboxes,
            replies: reply_rx,
        },
    )
}

impl Transport for ChannelTransport {
    fn me(&self) -> ReplicaId {
        self.me
    }

    fn n(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, to: ReplicaId, msg: SmrMsg) {
        if to == self.me {
            return;
        }
        if let Some(peer) = self.peers.get(to) {
            let _ = peer.send(NetEvent::Peer { from: self.me, msg });
        }
    }

    fn reply(&mut self, reply: Reply) {
        let _ = self.replies.send(reply);
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<NetEvent, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    fn try_recv(&mut self) -> Option<NetEvent> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Request;

    #[test]
    fn mesh_routes_peer_traffic_and_replies() {
        let (mut transports, handle) = channel_mesh(3);
        let msg = SmrMsg::Request(Request {
            client: 1,
            seq: 1,
            payload: vec![1],
            signature: None,
        });
        // Broadcast from replica 0 reaches 1 and 2, not 0.
        let mut t0 = transports.remove(0);
        t0.broadcast(&msg);
        assert!(t0.try_recv().is_none());
        for t in transports.iter_mut() {
            match t.recv_timeout(Duration::from_secs(1)).unwrap() {
                NetEvent::Peer { from: 0, msg: m } => assert_eq!(m, msg),
                other => panic!("unexpected event: {other:?}"),
            }
        }
        // Replies surface on the shared handle.
        transports[0].reply(Reply {
            client: 1,
            seq: 1,
            result: vec![2],
            replica: 1,
        });
        let r = handle.replies.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(r.replica, 1);
        // Injection via the handle reaches the replica.
        handle.inboxes[2].send(NetEvent::Shutdown).unwrap();
        assert!(matches!(
            transports[1].recv_timeout(Duration::from_secs(1)),
            Ok(NetEvent::Shutdown)
        ));
    }
}
