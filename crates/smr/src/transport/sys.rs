//! Thin in-tree wrapper over the handful of libc calls the event-driven
//! transport needs and `std::net` does not expose: `poll(2)` readiness
//! multiplexing and non-blocking `connect(2)`.
//!
//! The workspace is zero-external-dep by policy, so instead of the `libc`
//! crate these are direct `extern "C"` declarations against the C library
//! std already links. Everything else — accepted sockets, vectored writes
//! (`Write::write_vectored` is `writev` underneath), the wake channel
//! (`UnixStream::pair`) — goes through std. Linux-specific constants;
//! the metal transport targets Linux deployments.

use std::ffi::{c_int, c_ulong};
use std::io;
use std::net::SocketAddr;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Readable readiness (plus `POLLHUP`/`POLLERR`, which are always reported).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (connect completion on in-progress dials).
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (output only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (< 0 entries are skipped by the kernel).
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_ERROR: c_int = 4;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const u8, len: u32) -> c_int;
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_int,
        optlen: *mut u32,
    ) -> c_int;
}

/// Waits for readiness on `fds` for at most `timeout` (`None` = forever).
/// Returns the number of ready entries; `revents` is filled in place.
/// `EINTR` is retried internally.
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR`.
pub fn poll_wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: c_int = match timeout {
        // Round up so a 100 µs timer does not busy-spin at timeout 0.
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as c_int,
        None => -1,
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// State of a non-blocking dial started by [`connect_nonblocking`].
#[derive(Debug)]
pub enum Dial {
    /// The three-way handshake completed synchronously (loopback fast path).
    Connected(OwnedFd),
    /// The handshake is in flight: poll the fd for `POLLOUT`, then check
    /// [`take_socket_error`].
    InProgress(OwnedFd),
}

/// `sockaddr_in` / `sockaddr_in6` bytes plus their length, built in place.
fn encode_sockaddr(addr: &SocketAddr) -> ([u8; 28], u32) {
    let mut buf = [0u8; 28];
    match addr {
        SocketAddr::V4(v4) => {
            buf[..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v4.ip().octets());
            (buf, 16)
        }
        SocketAddr::V6(v6) => {
            buf[..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
            buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
            buf[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
            buf[8..24].copy_from_slice(&v6.ip().octets());
            buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
            (buf, 28)
        }
    }
}

/// Starts a non-blocking TCP connect to `addr`. Never blocks the caller:
/// the returned fd is already `O_NONBLOCK` (and `CLOEXEC`).
///
/// # Errors
///
/// Propagates socket creation failures and synchronously-detected connect
/// errors (anything but `EINPROGRESS`).
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<Dial> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Owned from here on: any error path below closes the fd.
    let owned = unsafe { OwnedFd::from_raw_fd(fd) };
    let (bytes, len) = encode_sockaddr(addr);
    let rc = unsafe { connect(fd, bytes.as_ptr(), len) };
    if rc == 0 {
        return Ok(Dial::Connected(owned));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        Ok(Dial::InProgress(owned))
    } else {
        Err(err)
    }
}

/// Reads and clears the pending socket error (`SO_ERROR`) — the connect
/// outcome after an in-progress dial polls writable.
///
/// # Errors
///
/// Returns the pending socket error as an `io::Error`, or the `getsockopt`
/// failure itself.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len: u32 = std::mem::size_of::<c_int>() as u32;
    let rc = unsafe { getsockopt(fd, SOL_SOCKET, SO_ERROR, &mut err, &mut len) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a = TcpStream::connect(addr).unwrap();
        let (mut b, _) = listener.accept().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: poll times out with no ready entries.
        assert_eq!(
            poll_wait(&mut fds, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(
            poll_wait(&mut fds, Some(Duration::from_secs(5))).unwrap(),
            1
        );
        assert_ne!(fds[0].revents & POLLIN, 0);
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn nonblocking_connect_completes_via_poll() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let dial = connect_nonblocking(&addr).unwrap();
        let fd = match &dial {
            Dial::Connected(fd) => fd.as_raw_fd(),
            Dial::InProgress(fd) => fd.as_raw_fd(),
        };
        let mut fds = [PollFd::new(fd, POLLOUT)];
        poll_wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
        take_socket_error(fd).expect("loopback connect succeeds");
        let (mut server, _) = listener.accept().unwrap();
        // The connected fd is a real duplex socket.
        let stream = TcpStream::from(match dial {
            Dial::Connected(fd) | Dial::InProgress(fd) => fd,
        });
        (&stream).write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_error() {
        // Bind-then-drop yields a port with (very likely) no listener.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        match connect_nonblocking(&addr) {
            Err(_) => {} // synchronous refusal is a valid outcome
            Ok(Dial::Connected(_)) => panic!("connect to a dead port must not succeed"),
            Ok(Dial::InProgress(fd)) => {
                let mut fds = [PollFd::new(fd.as_raw_fd(), POLLOUT)];
                poll_wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
                assert!(take_socket_error(fd.as_raw_fd()).is_err());
            }
        }
    }
}
