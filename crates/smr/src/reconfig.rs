//! The *centralized* reconfiguration baseline: BFT-SMaRt's trusted View
//! Manager (paper §II-C3).
//!
//! A distinguished client holding an administrative key issues signed
//! reconfiguration requests through the ordering protocol. The request is
//! never delivered to the application — replicas intercept it and update the
//! view. This is exactly the design the paper argues is *unsuitable* for
//! blockchains ("relies on a centralized third party with administrative
//! privileges", Observation 3); it exists here as the comparison point for
//! SmartChain's decentralized protocol in `smartchain-core`.

use crate::types::Request;
use smartchain_codec::{Decode, DecodeError, Encode};
use smartchain_crypto::keys::{PublicKey, SecretKey, Signature};

/// A View Manager's signed instruction to change the replica set.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewChangeCommand {
    /// The view this command creates (current view id + 1).
    pub new_view_id: u64,
    /// Replica consensus public keys of the new membership, in id order.
    pub members: Vec<PublicKey>,
    /// Signature by the View Manager's administrative key.
    pub signature: Signature,
}

/// Canonical bytes the View Manager signs.
pub fn command_payload(new_view_id: u64, members: &[PublicKey]) -> Vec<u8> {
    let mut out = Vec::new();
    b"sc-viewmgr".as_slice().encode(&mut out);
    new_view_id.encode(&mut out);
    (members.len() as u32).encode(&mut out);
    for m in members {
        m.to_wire().encode(&mut out);
    }
    out
}

impl ViewChangeCommand {
    /// Signs a new command with the manager's key.
    pub fn new(manager: &SecretKey, new_view_id: u64, members: Vec<PublicKey>) -> Self {
        let signature = manager.sign(&command_payload(new_view_id, &members));
        ViewChangeCommand {
            new_view_id,
            members,
            signature,
        }
    }

    /// Verifies the administrative signature.
    pub fn verify(&self, manager: &PublicKey) -> bool {
        manager.verify(
            &command_payload(self.new_view_id, &self.members),
            &self.signature,
        )
    }

    /// Wraps the command as an ordered request payload (marker byte 0xVM).
    pub fn to_request_payload(&self) -> Vec<u8> {
        let mut out = vec![VIEW_MANAGER_MARKER];
        self.encode(&mut out);
        out
    }

    /// Recognizes and parses a View Manager payload.
    pub fn from_request(req: &Request) -> Option<ViewChangeCommand> {
        let payload = req.payload.as_slice();
        if payload.first() != Some(&VIEW_MANAGER_MARKER) {
            return None;
        }
        let mut input = &payload[1..];
        ViewChangeCommand::decode(&mut input).ok()
    }
}

/// Marker byte distinguishing View Manager commands from app payloads.
pub const VIEW_MANAGER_MARKER: u8 = 0xAD;

impl Encode for ViewChangeCommand {
    fn encode(&self, out: &mut Vec<u8>) {
        self.new_view_id.encode(out);
        (self.members.len() as u32).encode(out);
        for m in &self.members {
            m.to_wire().encode(out);
        }
        self.signature.to_wire().encode(out);
    }
}

impl Decode for ViewChangeCommand {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let new_view_id = u64::decode(input)?;
        let n = u32::decode(input)? as usize;
        if n > 1024 {
            return Err(DecodeError::BadLength(n as u64));
        }
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push(PublicKey::from_wire(&<[u8; 33]>::decode(input)?));
        }
        Ok(ViewChangeCommand {
            new_view_id,
            members,
            signature: Signature::from_wire(&<[u8; 65]>::decode(input)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_crypto::keys::Backend;

    fn keys(n: usize) -> Vec<PublicKey> {
        (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 160; 32]).public_key())
            .collect()
    }

    #[test]
    fn signed_command_verifies() {
        let manager = SecretKey::from_seed(Backend::Sim, &[170u8; 32]);
        let cmd = ViewChangeCommand::new(&manager, 1, keys(5));
        assert!(cmd.verify(&manager.public_key()));
    }

    #[test]
    fn forged_command_rejected() {
        let manager = SecretKey::from_seed(Backend::Sim, &[170u8; 32]);
        let impostor = SecretKey::from_seed(Backend::Sim, &[171u8; 32]);
        let cmd = ViewChangeCommand::new(&impostor, 1, keys(5));
        assert!(
            !cmd.verify(&manager.public_key()),
            "impostor command must fail"
        );
        // Tampering with the member list also breaks the signature.
        let mut cmd = ViewChangeCommand::new(&manager, 1, keys(5));
        cmd.members.pop();
        assert!(!cmd.verify(&manager.public_key()));
    }

    #[test]
    fn request_payload_roundtrip() {
        let manager = SecretKey::from_seed(Backend::Sim, &[172u8; 32]);
        let cmd = ViewChangeCommand::new(&manager, 3, keys(4));
        let req = Request {
            client: 1,
            seq: 0,
            payload: cmd.to_request_payload(),
            signature: None,
        };
        let parsed = ViewChangeCommand::from_request(&req).expect("parses");
        assert_eq!(parsed, cmd);
        assert!(parsed.verify(&manager.public_key()));
    }

    #[test]
    fn app_payloads_not_mistaken_for_commands() {
        let req = Request {
            client: 1,
            seq: 0,
            payload: vec![0u8, 1, 2],
            signature: None,
        };
        assert!(ViewChangeCommand::from_request(&req).is_none());
    }
}
