//! Simulation actor embedding the ordering core: charges virtual hardware
//! costs, applies the signature-verification and persistence policies under
//! test, executes the application, and replies to clients.
//!
//! The policy knobs mirror the paper's experimental dimensions:
//!
//! * [`SigMode`] — no signatures / sequential verification (inside the state
//!   machine) / parallel verification (worker pool) — Table I columns;
//! * [`AppLedger`] — the *naive* SMaRtCoin design where the application
//!   itself writes a ledger synchronously or asynchronously — Table I rows;
//! * [`DurabilityMode`] — the BFT-SMaRt durability layer with coalesced
//!   group writes (Dura-SMaRt), the right-most Table I column.

use crate::app::Application;
use crate::ordering::{CoreOutput, OrderingConfig, OrderingCore, SmrMsg};
use crate::types::{Reply, Request};
use smartchain_consensus::messages::ConsensusMsg;
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::SecretKey;
use smartchain_sim::metrics::ThroughputMeter;
use smartchain_sim::{Actor, Ctx, Event, NodeId, Time, MILLI};
use std::collections::HashMap;

/// How client signatures are checked (Table I columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigMode {
    /// Requests carry no signatures.
    None,
    /// Verified inside the sequential state-machine lane.
    Sequential,
    /// Verified by the worker pool (BFT-SMaRt's verification pool).
    Parallel,
}

/// Application-level ledger writes (the naive SMaRtCoin design, §IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppLedger {
    /// The application keeps no ledger.
    None,
    /// Ledger block written synchronously before replying.
    Sync,
    /// Ledger block written asynchronously (buffered).
    Async,
}

/// SMR-layer durability (§II-C2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityMode {
    /// Nothing persisted by the SMR layer.
    None,
    /// Dura-SMaRt: decided batches logged with coalesced synchronous writes;
    /// replies gated on durability.
    DuraSmart,
}

/// Replica policy configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaConfig {
    /// Signature checking policy.
    pub sig_mode: SigMode,
    /// Application-level ledger policy.
    pub app_ledger: AppLedger,
    /// SMR durability policy.
    pub durability: DurabilityMode,
    /// Ordering (batching) parameters.
    pub ordering: OrderingConfig,
    /// Leader-change timeout.
    pub progress_timeout: Time,
    /// Per-transaction execution cost charged to the sequential lane.
    pub execute_ns: Time,
    /// Per-transaction app-level ledger serialization cost (only charged
    /// when `app_ledger != None`); models the naive design's bookkeeping.
    pub app_ledger_ns: Time,
    /// Reply payload size in bytes (MINT ≈ 270, SPEND ≈ 380 in the paper).
    pub reply_size: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            sig_mode: SigMode::None,
            app_ledger: AppLedger::None,
            durability: DurabilityMode::None,
            ordering: OrderingConfig::default(),
            progress_timeout: 500 * MILLI,
            execute_ns: 6_000,
            app_ledger_ns: 0,
            reply_size: 380,
        }
    }
}

/// Derives the hosting simulation node of a logical client id.
///
/// Client actors host many logical clients; the convention is
/// `client = (node << 20) | slot`.
pub fn client_node(client: u64) -> NodeId {
    (client >> 20) as usize
}

/// Builds a logical client id hosted on `node`.
pub fn client_id(node: NodeId, slot: u32) -> u64 {
    ((node as u64) << 20) | slot as u64
}

const TOKEN_PROGRESS: u64 = 1;
const TOKEN_KIND_SHIFT: u64 = 56;
const KIND_VERIFY: u64 = 1 << TOKEN_KIND_SHIFT;
const KIND_DISK: u64 = 2 << TOKEN_KIND_SHIFT;

/// The replica simulation actor.
pub struct ReplicaActor<A: Application> {
    core: OrderingCore,
    app: A,
    config: ReplicaConfig,
    /// Maps replica ids to simulation node ids (identity by default).
    peers: Vec<NodeId>,
    next_token: u64,
    /// Requests whose pool verification is in flight.
    verifying: HashMap<u64, Request>,
    /// Replies gated on a disk completion.
    gated_replies: HashMap<u64, Vec<Reply>>,
    /// Dura-SMaRt pipeline: queued (bytes, replies) awaiting the next flush.
    wal_queue: Vec<(usize, Vec<Reply>)>,
    wal_in_flight: bool,
    /// Progress-timer bookkeeping.
    timer_armed: bool,
    delivered_at_arm: u64,
    /// Throughput measurement (counts delivered transactions).
    meter: ThroughputMeter,
}

impl<A: Application> ReplicaActor<A> {
    /// Creates a replica actor. `peers[r]` is the sim node of replica `r`.
    pub fn new(
        me: ReplicaId,
        view: View,
        secret: SecretKey,
        app: A,
        config: ReplicaConfig,
        peers: Vec<NodeId>,
    ) -> ReplicaActor<A> {
        ReplicaActor {
            core: OrderingCore::new(me, view, secret, config.ordering, 0),
            app,
            config,
            peers,
            next_token: 10,
            verifying: HashMap::new(),
            gated_replies: HashMap::new(),
            wal_queue: Vec::new(),
            wal_in_flight: false,
            timer_armed: false,
            delivered_at_arm: 0,
            meter: ThroughputMeter::new(10_000),
        }
    }

    /// Throughput meter (read after a run).
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// The embedded ordering core (inspection in tests).
    pub fn core(&self) -> &OrderingCore {
        &self.core
    }

    /// The application (inspection in tests).
    pub fn app(&self) -> &A {
        &self.app
    }

    fn fresh_token(&mut self, kind: u64) -> u64 {
        self.next_token += 1;
        kind | self.next_token
    }

    fn handle_outputs(&mut self, outputs: Vec<CoreOutput>, ctx: &mut Ctx<'_, SmrMsg>) {
        for out in outputs {
            match out {
                CoreOutput::Broadcast(m) => {
                    // Sending an ACCEPT means producing a signature.
                    if matches!(m, SmrMsg::Consensus(ConsensusMsg::Accept { .. })) {
                        ctx.charge(ctx.hw().cpu.sign_ns);
                    }
                    let size = m.wire_size();
                    for r in 0..self.peers.len() {
                        if r != self.core.id() {
                            ctx.send(self.peers[r], m.clone(), size);
                        }
                    }
                }
                CoreOutput::Send(to, m) => {
                    let size = m.wire_size();
                    ctx.send(self.peers[to], m, size);
                }
                CoreOutput::Deliver(batch) => self.deliver(batch, ctx),
                CoreOutput::NeedStateTransfer { .. } => {
                    // The plain SMR actor has no state-transfer protocol; the
                    // blockchain layer (smartchain-core) provides one.
                }
            }
        }
        self.arm_progress_timer(ctx);
    }

    fn arm_progress_timer(&mut self, ctx: &mut Ctx<'_, SmrMsg>) {
        if !self.timer_armed && self.core.pending_len() > 0 {
            self.timer_armed = true;
            self.delivered_at_arm = self.core.last_delivered();
            ctx.set_timer(self.config.progress_timeout, TOKEN_PROGRESS);
        }
    }

    fn deliver(&mut self, batch: crate::ordering::OrderedBatch, ctx: &mut Ctx<'_, SmrMsg>) {
        let count = batch.requests.len();
        if count == 0 {
            return;
        }
        self.meter.record(ctx.now(), count as u64);
        // Execute all transactions on the sequential lane; in Sequential
        // mode the client signatures are verified here, inside the state
        // machine (the paper's "seq. signature verification" column).
        let mut exec_cost = self.config.execute_ns * count as Time;
        if self.config.sig_mode == SigMode::Sequential {
            exec_cost += ctx.hw().cpu.verify_ns * count as Time;
        }
        if self.config.app_ledger != AppLedger::None {
            exec_cost += self.config.app_ledger_ns * count as Time;
        }
        ctx.charge(exec_cost);
        let mut replies = Vec::with_capacity(count);
        let mut block_bytes = 64; // header
        for req in &batch.requests {
            if self.config.sig_mode == SigMode::Sequential && !req.verify_signature() {
                continue; // forged transaction dropped at execution
            }
            let mut result = self.app.execute(req);
            result.resize(self.config.reply_size.min(result.len().max(8)), 0);
            block_bytes += req.wire_size() + result.len();
            replies.push(Reply {
                client: req.client,
                seq: req.seq,
                result,
                replica: self.core.id(),
            });
        }
        // Hash the block contents (app ledger) or batch (durability layer).
        ctx.charge(ctx.hw().cpu.hash_time(block_bytes));
        match (self.config.app_ledger, self.config.durability) {
            (AppLedger::Sync, _) => {
                let token = self.fresh_token(KIND_DISK);
                ctx.disk_write(block_bytes, true, token);
                self.gated_replies.insert(token, replies);
            }
            (AppLedger::Async, _) => {
                ctx.disk_write(block_bytes, false, 0);
                self.send_replies(replies, ctx);
            }
            (AppLedger::None, DurabilityMode::DuraSmart) => {
                self.wal_queue.push((block_bytes, replies));
                self.maybe_flush_wal(ctx);
            }
            (AppLedger::None, DurabilityMode::None) => {
                self.send_replies(replies, ctx);
            }
        }
    }

    fn maybe_flush_wal(&mut self, ctx: &mut Ctx<'_, SmrMsg>) {
        if self.wal_in_flight || self.wal_queue.is_empty() {
            return;
        }
        // One synchronous write covers every queued batch (group commit).
        let total: usize = self.wal_queue.iter().map(|(b, _)| *b).sum();
        let replies: Vec<Reply> = self.wal_queue.drain(..).flat_map(|(_, r)| r).collect();
        let token = self.fresh_token(KIND_DISK);
        ctx.disk_write(total, true, token);
        self.gated_replies.insert(token, replies);
        self.wal_in_flight = true;
    }

    fn send_replies(&mut self, replies: Vec<Reply>, ctx: &mut Ctx<'_, SmrMsg>) {
        for reply in replies {
            let node = client_node(reply.client);
            let msg = SmrMsg::Reply(reply);
            let size = msg.wire_size();
            ctx.send(node, msg, size);
        }
    }

    fn admit(&mut self, request: Request, ctx: &mut Ctx<'_, SmrMsg>) {
        match self.config.sig_mode {
            SigMode::None => {
                let outs = self.core.submit(request);
                self.handle_outputs(outs, ctx);
            }
            SigMode::Sequential => {
                // Verification happens at execution time (inside the state
                // machine); admission just queues the request.
                let outs = self.core.submit(request);
                self.handle_outputs(outs, ctx);
            }
            SigMode::Parallel => {
                ctx.charge(ctx.hw().cpu.pool_dispatch_ns);
                let delay = ctx.pool_charge(ctx.hw().cpu.verify_ns, 1);
                let token = self.fresh_token(KIND_VERIFY);
                self.verifying.insert(token, request);
                ctx.op_after(delay, token);
            }
        }
    }
}

impl<A: Application> Actor<SmrMsg> for ReplicaActor<A> {
    fn on_event(&mut self, event: Event<SmrMsg>, ctx: &mut Ctx<'_, SmrMsg>) {
        match event {
            Event::Start => {}
            Event::Message { from, msg } => {
                ctx.charge(ctx.hw().cpu.message_overhead_ns);
                match msg {
                    SmrMsg::Request(req) => self.admit(req, ctx),
                    SmrMsg::Consensus(cmsg) => {
                        // Charge crypto costs of the consensus step.
                        match &cmsg {
                            ConsensusMsg::Propose { value, .. } => {
                                ctx.charge(ctx.hw().cpu.hash_time(value.len()));
                            }
                            ConsensusMsg::Accept { .. } => {
                                ctx.charge(ctx.hw().cpu.verify_ns / 4);
                            }
                            _ => {}
                        }
                        let from_replica = self.peers.iter().position(|&p| p == from);
                        if let Some(r) = from_replica {
                            let outs = self.core.on_message(r, SmrMsg::Consensus(cmsg));
                            self.handle_outputs(outs, ctx);
                        }
                    }
                    other @ (SmrMsg::Sync(_)
                    | SmrMsg::InstanceFetch { .. }
                    | SmrMsg::InstanceRep { .. }) => {
                        let from_replica = self.peers.iter().position(|&p| p == from);
                        if let Some(r) = from_replica {
                            let outs = self.core.on_message(r, other);
                            self.handle_outputs(outs, ctx);
                        }
                    }
                    SmrMsg::Reply(_) => {}
                    // Runtime state transfer and checkpoint certification
                    // are metal-deployment concerns; simulated replicas
                    // share fate within the window and use `ChainMsg`-level
                    // transfer instead.
                    SmrMsg::StateReq { .. }
                    | SmrMsg::StateRep { .. }
                    | SmrMsg::CkptShare { .. } => {}
                }
            }
            Event::Timer {
                token: TOKEN_PROGRESS,
            } => {
                self.timer_armed = false;
                if self.core.last_delivered() == self.delivered_at_arm
                    && self.core.pending_len() > 0
                {
                    let outs = self.core.on_progress_timeout();
                    self.handle_outputs(outs, ctx);
                } else {
                    self.arm_progress_timer(ctx);
                }
            }
            Event::Timer { .. } => {}
            Event::OpDone { token } => match token >> TOKEN_KIND_SHIFT {
                k if k == (KIND_VERIFY >> TOKEN_KIND_SHIFT) => {
                    if let Some(req) = self.verifying.remove(&token) {
                        if req.verify_signature() {
                            let outs = self.core.submit(req);
                            self.handle_outputs(outs, ctx);
                        }
                    }
                }
                k if k == (KIND_DISK >> TOKEN_KIND_SHIFT) => {
                    if let Some(replies) = self.gated_replies.remove(&token) {
                        self.send_replies(replies, ctx);
                    }
                    if self.wal_in_flight {
                        self.wal_in_flight = false;
                        self.maybe_flush_wal(ctx);
                    }
                }
                _ => {}
            },
            Event::Crash => {
                // Volatile state is lost; the plain SMR actor restarts from
                // scratch on recovery (no state transfer at this layer).
            }
            Event::Recover => {
                let view = self.core.view().clone();
                // NOTE: consensus keys survive here; the blockchain layer
                // replaces them per view (forgetting protocol).
                self.app.reset();
                self.verifying.clear();
                self.gated_replies.clear();
                self.wal_queue.clear();
                self.wal_in_flight = false;
                self.timer_armed = false;
                let _ = view;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Replica ids double as vector indices throughout these tests.
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use crate::app::CounterApp;
    use crate::client::{ClientActor, ClientConfig, CounterFactory};
    use smartchain_crypto::keys::Backend;
    use smartchain_sim::hw::HwSpec;
    use smartchain_sim::{Cluster, SECOND};

    fn build_cluster(
        n: usize,
        clients: usize,
        per_client: u64,
        config: ReplicaConfig,
    ) -> Cluster<SmrMsg> {
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 70; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        let peers: Vec<NodeId> = (0..n).collect();
        let mut actors: Vec<Box<dyn Actor<SmrMsg>>> = Vec::new();
        for i in 0..n {
            actors.push(Box::new(ReplicaActor::new(
                i,
                view.clone(),
                secrets[i].clone(),
                CounterApp::new(),
                config,
                peers.clone(),
            )));
        }
        for c in 0..clients {
            let node = n + c;
            actors.push(Box::new(ClientActor::new(
                node,
                peers.clone(),
                view.f(),
                ClientConfig {
                    logical_clients: 2,
                    requests_per_client: Some(per_client),
                    ..ClientConfig::default()
                },
                Box::new(CounterFactory::new(false)),
            )));
        }
        Cluster::new(actors, HwSpec::test_fast(), 42)
    }

    fn replica(cluster: &mut Cluster<SmrMsg>, id: usize) -> &ReplicaActor<CounterApp> {
        cluster
            .actor(id)
            .as_any()
            .downcast_ref::<ReplicaActor<CounterApp>>()
            .expect("replica actor")
    }

    #[test]
    fn cluster_processes_all_requests() {
        let mut cluster = build_cluster(4, 2, 25, ReplicaConfig::default());
        cluster.run_until(30 * SECOND);
        let r0 = replica(&mut cluster, 0);
        // 2 client actors x 2 logical clients x 25 requests.
        assert_eq!(r0.meter().total(), 100);
        assert!(r0.core().last_delivered() > 0);
    }

    #[test]
    fn all_replicas_agree_on_totals() {
        let mut cluster = build_cluster(4, 2, 20, ReplicaConfig::default());
        cluster.run_until(30 * SECOND);
        let totals: Vec<u64> = (0..4)
            .map(|i| replica(&mut cluster, i).meter().total())
            .collect();
        assert!(totals.iter().all(|&t| t == totals[0]), "{totals:?}");
    }

    #[test]
    fn sequential_signatures_verified_and_accepted() {
        let config = ReplicaConfig {
            sig_mode: SigMode::Sequential,
            ..ReplicaConfig::default()
        };
        let secrets: Vec<SecretKey> = (0..4)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 70; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        let peers: Vec<NodeId> = (0..4).collect();
        let mut actors: Vec<Box<dyn Actor<SmrMsg>>> = Vec::new();
        for i in 0..4 {
            actors.push(Box::new(ReplicaActor::new(
                i,
                view.clone(),
                secrets[i].clone(),
                CounterApp::new(),
                config,
                peers.clone(),
            )));
        }
        actors.push(Box::new(ClientActor::new(
            4,
            peers.clone(),
            view.f(),
            ClientConfig {
                logical_clients: 1,
                requests_per_client: Some(10),
                ..ClientConfig::default()
            },
            Box::new(CounterFactory::new(true)), // signed requests
        )));
        let mut cluster = Cluster::new(actors, HwSpec::test_fast(), 7);
        cluster.run_until(30 * SECOND);
        let r0 = replica(&mut cluster, 0);
        assert_eq!(r0.meter().total(), 10);
    }

    #[test]
    fn parallel_signatures_also_complete() {
        let config = ReplicaConfig {
            sig_mode: SigMode::Parallel,
            ..ReplicaConfig::default()
        };
        let secrets: Vec<SecretKey> = (0..4)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 70; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        let peers: Vec<NodeId> = (0..4).collect();
        let mut actors: Vec<Box<dyn Actor<SmrMsg>>> = Vec::new();
        for i in 0..4 {
            actors.push(Box::new(ReplicaActor::new(
                i,
                view.clone(),
                secrets[i].clone(),
                CounterApp::new(),
                config,
                peers.clone(),
            )));
        }
        actors.push(Box::new(ClientActor::new(
            4,
            peers,
            view.f(),
            ClientConfig {
                logical_clients: 4,
                requests_per_client: Some(5),
                ..ClientConfig::default()
            },
            Box::new(CounterFactory::new(true)),
        )));
        let mut cluster = Cluster::new(actors, HwSpec::test_fast(), 7);
        cluster.run_until(30 * SECOND);
        let r0 = replica(&mut cluster, 0);
        assert_eq!(r0.meter().total(), 20);
    }

    #[test]
    fn dura_smart_gates_replies_on_disk() {
        let config = ReplicaConfig {
            durability: DurabilityMode::DuraSmart,
            ..ReplicaConfig::default()
        };
        let mut cluster = build_cluster(4, 1, 10, config);
        cluster.run_until(30 * SECOND);
        // All requests complete (replies released by disk completions) and
        // every replica issued at least one synchronous write.
        let r0 = replica(&mut cluster, 0);
        assert_eq!(r0.meter().total(), 20);
        for i in 0..4 {
            assert!(
                cluster.sim_ref().disk_syncs(i) > 0,
                "replica {i} never synced"
            );
        }
    }

    #[test]
    fn leader_crash_recovers_liveness() {
        let mut cluster = build_cluster(4, 1, 30, ReplicaConfig::default());
        cluster.sim().crash(0, MILLI);
        cluster.run_until(60 * SECOND);
        let r1 = replica(&mut cluster, 1);
        assert_eq!(
            r1.meter().total(),
            60,
            "progress must resume after leader change"
        );
        assert!(
            r1.core().regency() >= 1,
            "a leader change must have happened"
        );
    }
}
