//! Closed-loop client actors for the simulator.
//!
//! The paper drives its experiments with 2400 client processes spread over
//! four machines, each issuing a request and waiting for matching replies
//! before sending the next (§VI-A). One [`ClientActor`] hosts many *logical*
//! clients (to keep simulation event counts manageable), each an independent
//! closed loop: send to all replicas → await `f+1` matching replies (or
//! `2f+1` when durable acknowledgement is required, §IV-B) → next request.

use crate::actor::client_id;
use crate::ordering::{SmrEnvelope, SmrMsg};
use crate::types::{Reply, Request};
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_sim::metrics::LatencyMeter;
use smartchain_sim::{Actor, Ctx, Event, NodeId, Time, MILLI, SECOND};
use std::collections::{BTreeMap, HashMap};

/// Builds application requests for a workload.
pub trait RequestFactory: Send {
    /// Produces the request for `(client, seq)`.
    fn make(&mut self, client: u64, seq: u64) -> Request;
}

/// Factory for the test counter application.
pub struct CounterFactory {
    signed: bool,
    keys: HashMap<u64, SecretKey>,
}

impl CounterFactory {
    /// Creates a factory; `signed` controls request signatures.
    pub fn new(signed: bool) -> CounterFactory {
        CounterFactory {
            signed,
            keys: HashMap::new(),
        }
    }
}

impl RequestFactory for CounterFactory {
    fn make(&mut self, client: u64, seq: u64) -> Request {
        let payload = vec![(client % 251) as u8, (seq % 251) as u8, 1];
        let signature = if self.signed {
            let key = self.keys.entry(client).or_insert_with(|| {
                let mut seed = [0u8; 32];
                seed[..8].copy_from_slice(&client.to_le_bytes());
                seed[8] = 0xc1;
                SecretKey::from_seed(Backend::Sim, &seed)
            });
            let sig = key.sign(&Request::sign_payload(client, seq, &payload));
            Some((key.public_key(), sig))
        } else {
            None
        };
        Request {
            client,
            seq,
            payload,
            signature,
        }
    }
}

/// Client behaviour parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Logical clients hosted by this actor.
    pub logical_clients: u32,
    /// Requests each logical client issues (None = unbounded).
    pub requests_per_client: Option<u64>,
    /// Matching replies needed beyond `f` (true = durable 2f+1, false = f+1).
    pub durable_quorum: bool,
    /// Retransmission timeout.
    pub retransmit_after: Time,
    /// Delay before the first request (lets replicas initialize).
    pub start_delay: Time,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            logical_clients: 1,
            requests_per_client: None,
            durable_quorum: false,
            retransmit_after: 2 * SECOND,
            start_delay: MILLI,
        }
    }
}

struct Outstanding {
    request: Request,
    sent_at: Time,
    /// result bytes -> set of replicas that replied with them.
    replies: HashMap<Vec<u8>, Vec<usize>>,
}

/// A simulation actor hosting `logical_clients` closed-loop clients.
///
/// Generic over the network message type `M` so the same client drives plain
/// SMR replicas and SmartChain nodes.
pub struct ClientActor<M = SmrMsg> {
    _marker: std::marker::PhantomData<M>,
    node: NodeId,
    replicas: Vec<NodeId>,
    f: usize,
    config: ClientConfig,
    factory: Box<dyn RequestFactory>,
    next_seq: HashMap<u64, u64>,
    /// In-flight requests, ordered by (client, seq) so the retransmit scan
    /// walks them deterministically (hash order would vary run to run and
    /// break seeded reproducibility).
    outstanding: BTreeMap<(u64, u64), Outstanding>,
    latency: LatencyMeter,
    completed: u64,
}

impl<M: SmrEnvelope> ClientActor<M> {
    /// Creates a client actor on simulation node `node`.
    pub fn new(
        node: NodeId,
        replicas: Vec<NodeId>,
        f: usize,
        config: ClientConfig,
        factory: Box<dyn RequestFactory>,
    ) -> ClientActor<M> {
        ClientActor {
            _marker: std::marker::PhantomData,
            node,
            replicas,
            f,
            config,
            factory,
            next_seq: HashMap::new(),
            outstanding: BTreeMap::new(),
            latency: LatencyMeter::new(),
            completed: 0,
        }
    }

    /// Completed request count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Observed latencies.
    pub fn latency(&self) -> &LatencyMeter {
        &self.latency
    }

    /// Replaces the replica set (after a reconfiguration).
    pub fn set_replicas(&mut self, replicas: Vec<NodeId>, f: usize) {
        self.replicas = replicas;
        self.f = f;
    }

    fn required_matching(&self) -> usize {
        if self.config.durable_quorum {
            2 * self.f + 1
        } else {
            self.f + 1
        }
    }

    fn fire_next(&mut self, logical: u64, ctx: &mut Ctx<'_, M>) {
        let seq = self.next_seq.entry(logical).or_insert(0);
        if let Some(limit) = self.config.requests_per_client {
            if *seq >= limit {
                return;
            }
        }
        let this_seq = *seq;
        *seq += 1;
        let request = self.factory.make(logical, this_seq);
        let msg = M::from_smr(SmrMsg::Request(request.clone()));
        let size = msg.envelope_size();
        for &r in &self.replicas {
            ctx.send(r, msg.clone(), size);
        }
        self.outstanding.insert(
            (logical, this_seq),
            Outstanding {
                request,
                sent_at: ctx.now(),
                replies: HashMap::new(),
            },
        );
    }

    fn on_reply(&mut self, reply: Reply, ctx: &mut Ctx<'_, M>) {
        let key = (reply.client, reply.seq);
        let required = self.required_matching();
        let Some(entry) = self.outstanding.get_mut(&key) else {
            return; // duplicate/late reply
        };
        let repliers = entry.replies.entry(reply.result).or_default();
        if repliers.contains(&reply.replica) {
            return;
        }
        repliers.push(reply.replica);
        if repliers.len() >= required {
            let sent_at = entry.sent_at;
            self.outstanding.remove(&key);
            self.latency.record(ctx.now() - sent_at);
            self.completed += 1;
            self.fire_next(key.0, ctx);
        }
    }
}

impl<M: SmrEnvelope> Actor<M> for ClientActor<M> {
    fn on_event(&mut self, event: Event<M>, ctx: &mut Ctx<'_, M>) {
        match event {
            Event::Start => {
                for slot in 0..self.config.logical_clients {
                    let logical = client_id(self.node, slot);
                    // Stagger starts slightly for realism.
                    let _ = logical;
                }
                ctx.set_timer(self.config.start_delay, 0);
                ctx.set_timer(self.config.retransmit_after, 1);
            }
            Event::Timer { token: 0 } => {
                for slot in 0..self.config.logical_clients {
                    let logical = client_id(self.node, slot);
                    self.fire_next(logical, ctx);
                }
            }
            Event::Timer { token: 1 } => {
                // Retransmit stragglers.
                let now = ctx.now();
                let stale: Vec<Request> = self
                    .outstanding
                    .values_mut()
                    .filter(|o| now.saturating_sub(o.sent_at) >= self.config.retransmit_after)
                    .map(|o| {
                        o.sent_at = now;
                        o.request.clone()
                    })
                    .collect();
                for request in stale {
                    let msg = M::from_smr(SmrMsg::Request(request));
                    let size = msg.envelope_size();
                    for &r in &self.replicas {
                        ctx.send(r, msg.clone(), size);
                    }
                }
                ctx.set_timer(self.config.retransmit_after, 1);
            }
            Event::Timer { .. } => {}
            Event::Message { msg, .. } => {
                if let Some(reply) = msg.as_reply() {
                    let reply = reply.clone();
                    self.on_reply(reply, ctx);
                }
            }
            Event::OpDone { .. } | Event::Crash | Event::Recover => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_produces_increasing_seqs() {
        let mut f = CounterFactory::new(true);
        let a = f.make(client_id(5, 0), 0);
        let b = f.make(client_id(5, 0), 1);
        assert_eq!(a.client, b.client);
        assert!(a.verify_signature() && b.verify_signature());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn client_ids_embed_node() {
        let c = client_id(7, 3);
        assert_eq!(crate::actor::client_node(c), 7);
    }
}
