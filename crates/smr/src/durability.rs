//! Real-storage durable delivery (the non-simulated counterpart of the
//! Dura-SMaRt pipeline): decided batches are appended to a durability engine
//! — the group-commit [`SegmentedEngine`] on actual files by default —
//! snapshots are cut every `checkpoint_period` batches, the log prefix a
//! snapshot covers is truncated (an O(segment-delete) operation), and
//! recovery replays snapshot + post-checkpoint suffix only: restart cost is
//! bounded by the checkpoint interval, not the chain length.
//!
//! Each logged record is self-describing and decision-bound:
//!
//! ```text
//! LoggedBatch { prev, value, proof }
//!   prev   chain hash of the predecessor record (genesis = zero) — the
//!          batch chain a state-transfer suffix must extend
//!   value  the RAW decided consensus value; sha256(value) is exactly
//!          proof.value_hash, binding the bytes to the quorum decision
//!   proof  the quorum of signed ACCEPTs for this instance
//! ```
//!
//! so the runtime state-transfer path can *verify* a shipped suffix — each
//! record's proof checks under the current view, is bound to the record's
//! content, carries the right instance number, and chains onto the
//! requester's own tip — before anything is appended (see
//! [`verify_shipped_suffix`] and [`DurableApp::install_remote`]).
//!
//! The persistence policy is pluggable: [`DurableApp::open`] uses the
//! paper's 0/1-Persistence group-commit rung, while
//! [`DurableApp::open_with_engine`] accepts any [`DurabilityEngine`] — the
//! same trait the simulated `ChainNode` routes its persistence ladder
//! through, so both deployments share one durability implementation.

use crate::app::Application;
use crate::ordering::OrderedBatch;
use crate::types::{decode_batch, encode_batch, Request};
use smartchain_codec::{decode_seq, encode_seq, from_bytes, to_bytes, Decode, DecodeError, Encode};
use smartchain_consensus::proof::DecisionProof;
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::Signature;
use smartchain_crypto::sha256;
use smartchain_merkle as merkle;
use smartchain_storage::engine::SegmentedEngine;
use smartchain_storage::segmented::{RecoveryStats, SegmentConfig};
use smartchain_storage::snapshot::{Snapshot, SnapshotStore};
use smartchain_storage::wal::FlushStats;
use smartchain_storage::{DurabilityEngine, RecordLog, SyncPolicy};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The batch chain hash: `tip_k = sha256(tip_{k-1} ‖ sha256(value_k))`.
///
/// Takes the value as a shared handle so the inner digest reuses the
/// memoized value hash (computed once per allocation, usually already paid
/// by consensus) instead of rehashing the batch bytes.
fn chain_tip_shared(prev: &[u8; 32], value: &smartchain_crypto::ValueBytes) -> [u8; 32] {
    sha256::digest_parts(&[prev, &value.hash()])
}

/// One durable log record: the raw decided value plus its decision proof,
/// chained onto the predecessor record.
#[derive(Clone, Debug, PartialEq)]
pub struct LoggedBatch {
    /// Chain hash of the predecessor record ([0; 32] for batch 1).
    pub prev: [u8; 32],
    /// The raw decided consensus value (`sha256` of it = `proof.value_hash`),
    /// held as a shared, hash-memoized handle — replay verification and
    /// chain-tip updates digest it once.
    pub value: smartchain_crypto::ValueBytes,
    /// Quorum of signed ACCEPTs for this instance.
    pub proof: DecisionProof,
}

impl Encode for LoggedBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev.encode(out);
        self.value.encode(out);
        self.proof.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.prev.encoded_len() + self.value.encoded_len() + self.proof.encoded_len()
    }
}

impl Decode for LoggedBatch {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(LoggedBatch {
            prev: <[u8; 32]>::decode(input)?,
            value: smartchain_crypto::ValueBytes::decode(input)?,
            proof: DecisionProof::decode(input)?,
        })
    }
}

/// Snapshot sidecar persisted (and shipped) with the application state: the
/// dedup frontier and the batch chain tip at the covered point, so replaying
/// the raw-value suffix reproduces exactly the live execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotMeta {
    /// Per-client highest delivered sequence number at the covered batch.
    pub frontier: Vec<(u64, u64)>,
    /// Batch chain hash after the covered batch.
    pub tip: [u8; 32],
    /// Chunked Merkle root of the snapshotted application state
    /// ([`merkle::chunked_root`] over [`merkle::STATE_CHUNK`]-byte chunks) —
    /// the root a [`CheckpointCert`] quorum signs, and what a shipped
    /// snapshot is verified against chunk-by-chunk at install time.
    pub state_root: [u8; 32],
    /// Each client's latest `(client, seq, result)` at the covered batch —
    /// the reply cache, persisted so a restarted replica still answers
    /// retransmissions of pre-crash deliveries (bounded: one entry per
    /// client, like the frontier). Sorted by client id.
    pub replies: Vec<(u64, u64, Vec<u8>)>,
}

impl Encode for SnapshotMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        smartchain_codec::encode_seq(&self.frontier, out);
        self.tip.encode(out);
        self.state_root.encode(out);
        smartchain_codec::encode_seq(&self.replies, out);
    }
    fn encoded_len(&self) -> usize {
        smartchain_codec::seq_encoded_len(&self.frontier)
            + self.tip.encoded_len()
            + 32
            + smartchain_codec::seq_encoded_len(&self.replies)
    }
}

impl Decode for SnapshotMeta {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(SnapshotMeta {
            frontier: smartchain_codec::decode_seq(input)?,
            tip: <[u8; 32]>::decode(input)?,
            state_root: <[u8; 32]>::decode(input)?,
            replies: smartchain_codec::decode_seq(input)?,
        })
    }
}

/// Canonical bytes a replica signs to certify a checkpoint: the covered
/// batch, the chunked state root, and the batch chain tip at that point.
pub fn ckpt_sign_payload(covered: u64, state_root: &[u8; 32], tip: &[u8; 32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 32 + 32);
    b"sc-ckpt".as_slice().encode(&mut out);
    covered.encode(&mut out);
    state_root.encode(&mut out);
    tip.encode(&mut out);
    out
}

/// A quorum of replica signatures over one checkpoint's
/// `(covered, state_root, tip)` — the runtime counterpart of the simulated
/// chain's header-bound snapshot commitment. It is what lets a recovering
/// replica install a snapshot-ahead state transfer *without trusting the
/// shipper*: the shipped bytes must re-chunk to the certified root.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointCert {
    /// Batches the certified checkpoint summarizes.
    pub covered: u64,
    /// Chunked Merkle root of the application state at `covered`.
    pub state_root: [u8; 32],
    /// Batch chain hash after `covered`.
    pub tip: [u8; 32],
    /// `(signer, signature)` pairs over [`ckpt_sign_payload`]; valid certs
    /// have ≥ quorum distinct signers from the view.
    pub signatures: Vec<(ReplicaId, Signature)>,
}

impl CheckpointCert {
    /// Checks the certificate against `view` (same rules as
    /// [`DecisionProof::verify`]: distinct member signers, every signature
    /// valid, quorum reached).
    pub fn verify(&self, view: &View) -> bool {
        let payload = ckpt_sign_payload(self.covered, &self.state_root, &self.tip);
        let mut seen = vec![false; view.n()];
        let mut valid = 0usize;
        for (signer, signature) in &self.signatures {
            let Some(key) = view.members.get(*signer) else {
                return false;
            };
            if seen[*signer] {
                return false; // duplicate signer — malformed certificate
            }
            seen[*signer] = true;
            if !key.verify(&payload, signature) {
                return false;
            }
            valid += 1;
        }
        valid >= view.quorum()
    }
}

impl Encode for CheckpointCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.covered.encode(out);
        self.state_root.encode(out);
        self.tip.encode(out);
        let entries: Vec<(u64, [u8; 65])> = self
            .signatures
            .iter()
            .map(|(r, s)| (*r as u64, s.to_wire()))
            .collect();
        encode_seq(&entries, out);
    }
    fn encoded_len(&self) -> usize {
        self.covered.encoded_len() + 32 + 32 + 4 + self.signatures.len() * (8 + 65)
    }
}

impl Decode for CheckpointCert {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let covered = u64::decode(input)?;
        let state_root = <[u8; 32]>::decode(input)?;
        let tip = <[u8; 32]>::decode(input)?;
        let entries: Vec<(u64, [u8; 65])> = decode_seq(input)?;
        Ok(CheckpointCert {
            covered,
            state_root,
            tip,
            signatures: entries
                .into_iter()
                .map(|(r, s)| (r as usize, Signature::from_wire(&s)))
                .collect(),
        })
    }
}

/// Why [`DurableApp::install_remote`] refused a state-transfer reply.
#[derive(Debug)]
pub enum InstallError {
    /// A snapshot running ahead of local state arrived without a checkpoint
    /// certificate — the shipper is asking to be trusted, which the install
    /// path no longer does.
    MissingCert,
    /// The certificate does not cover this snapshot or does not verify
    /// (sub-quorum, non-member or duplicate signers, invalid signatures).
    BadCert,
    /// The shipped state bytes do not re-chunk to the certified state root
    /// (a tampered or substituted chunk).
    StateRootMismatch,
    /// The shipped meta's batch chain tip differs from the certified tip.
    TipMismatch,
    /// The reply does not line up with local state (a gap, a chain break,
    /// or an undecodable payload) — re-request, nothing was applied beyond
    /// what already succeeded.
    Rejected(&'static str),
    /// Local storage failure.
    Storage(io::Error),
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::MissingCert => {
                write!(f, "snapshot-ahead install without a checkpoint certificate")
            }
            InstallError::BadCert => write!(f, "checkpoint certificate does not verify"),
            InstallError::StateRootMismatch => {
                write!(f, "shipped state does not match the certified state root")
            }
            InstallError::TipMismatch => {
                write!(f, "shipped chain tip does not match the certified tip")
            }
            InstallError::Rejected(why) => write!(f, "{why}"),
            InstallError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<io::Error> for InstallError {
    fn from(e: io::Error) -> Self {
        InstallError::Storage(e)
    }
}

/// A verifiable light-client read: one [`merkle::STATE_CHUNK`]-sized chunk
/// of the latest certified checkpoint state, its membership proof under the
/// certified state root, and the quorum certificate that binds the root —
/// everything a client needs to verify the bytes against nothing but the
/// view's public keys.
#[derive(Clone, Debug, PartialEq)]
pub struct ReadProof {
    /// Batches the certified checkpoint summarizes.
    pub covered: u64,
    /// Index of `chunk` in the chunked state.
    pub chunk_index: u64,
    /// The raw state chunk.
    pub chunk: Vec<u8>,
    /// Membership proof of `chunk` under the certified state root.
    pub proof: merkle::Proof,
    /// The quorum certificate over the state root.
    pub cert: CheckpointCert,
}

impl ReadProof {
    /// Verifies the whole bundle against `view`: the certificate carries a
    /// signature quorum, covers the claimed point, and the chunk's
    /// membership proof opens the certified root at the claimed index.
    pub fn verify(&self, view: &View) -> bool {
        self.cert.covered == self.covered
            && self.proof.index as u64 == self.chunk_index
            && self.cert.verify(view)
            && merkle::verify(&self.cert.state_root, &self.chunk, &self.proof)
    }
}

impl Encode for ReadProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.covered.encode(out);
        self.chunk_index.encode(out);
        self.chunk.encode(out);
        self.proof.encode(out);
        self.cert.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.covered.encoded_len()
            + self.chunk_index.encoded_len()
            + self.chunk.encoded_len()
            + self.proof.encoded_len()
            + self.cert.encoded_len()
    }
}

impl Decode for ReadProof {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ReadProof {
            covered: u64::decode(input)?,
            chunk_index: u64::decode(input)?,
            chunk: Vec::<u8>::decode(input)?,
            proof: merkle::Proof::decode(input)?,
            cert: CheckpointCert::decode(input)?,
        })
    }
}

/// The snapshot payload of a state-transfer reply: application state plus
/// the covered point's [`SnapshotMeta`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShippedSnapshot {
    /// Serialized application state.
    pub state: Vec<u8>,
    /// Frontier + chain tip at the snapshot's covered batch.
    pub meta: SnapshotMeta,
}

impl Encode for ShippedSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.state.encode(out);
        self.meta.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.state.encoded_len() + self.meta.encoded_len()
    }
}

impl Decode for ShippedSnapshot {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ShippedSnapshot {
            state: Vec::<u8>::decode(input)?,
            meta: SnapshotMeta::decode(input)?,
        })
    }
}

/// The durable half of a runtime state-transfer reply (the fields of
/// `SmrMsg::StateRep` sans the ordering-layer dedup frontier).
#[derive(Clone, Debug)]
pub struct StateReply {
    /// Batches summarized by `snapshot` (0 = none shipped).
    pub covered: u64,
    /// Encoded [`ShippedSnapshot`] covering batches `1..=covered`.
    pub snapshot: Option<Vec<u8>>,
    /// Batch number of `batches[0]`.
    pub first_batch: u64,
    /// Encoded [`LoggedBatch`] records, consecutive from `first_batch`.
    pub batches: Vec<Vec<u8>>,
    /// The quorum certificate for the shipped snapshot's checkpoint, when
    /// one has assembled — required by the receiver for snapshot-ahead
    /// installs.
    pub cert: Option<CheckpointCert>,
}

/// Digest check for a shipped batch suffix: every record must decode, carry
/// the decision proof for exactly its own batch number, have its proof
/// *content-bound* (`sha256(value) == proof.value_hash` — the consensus
/// value hash the quorum signed), and verify under the current view's
/// consensus keys. Run this BEFORE [`DurableApp::install_remote`]: an
/// HMAC-authenticated but Byzantine member cannot feed a recovering replica
/// forged *batches* that survive it.
///
/// Scope: this authenticates the suffix only. A reply whose *snapshot*
/// runs ahead of the requester still trusts the shipper for the snapshot
/// state/meta (nothing binds an application state blob to the decisions
/// that produced it without replaying them) — the remaining gap recorded
/// in ROADMAP's state-transfer hardening item.
pub fn verify_shipped_suffix(view: &View, first_batch: u64, batches: &[Vec<u8>]) -> bool {
    batches.iter().enumerate().all(|(i, record)| {
        let Ok(lb) = from_bytes::<LoggedBatch>(record) else {
            return false;
        };
        lb.proof.instance == first_batch + i as u64
            && lb.value.hash() == lb.proof.value_hash
            && lb.proof.verify(view)
    })
}

/// A durable, checkpointed application host.
///
/// Wraps an [`Application`] with a write-ahead batch log and snapshot store:
/// every delivered batch is logged through the engine before (or while)
/// executing, and every `checkpoint_period` batches the application state is
/// snapshotted and the covered log prefix truncated.
pub struct DurableApp<A: Application> {
    app: A,
    engine: Box<dyn DurabilityEngine>,
    snapshots: SnapshotStore,
    checkpoint_period: u64,
    batches_applied: u64,
    /// Per-client highest delivered sequence (mirrors the ordering core's
    /// duplicate filter; replaying raw decided values through it reproduces
    /// exactly the live execution).
    frontier: BTreeMap<u64, u64>,
    /// Each client's latest executed `(seq, result)` — the durable reply
    /// cache. Persisted in [`SnapshotMeta`] and rebuilt by replay, so a
    /// restarted replica answers retransmissions of pre-crash deliveries.
    replies: BTreeMap<u64, (u64, Vec<u8>)>,
    /// Batch chain hash after `batches_applied`.
    tip: [u8; 32],
    /// Records the last open replayed into the application (restart-cost
    /// observability: bounded by the checkpoint interval).
    replayed_on_recovery: u64,
    /// `(covered, state_root, tip)` of the newest local checkpoint — the
    /// basis a [`CheckpointCert`] must match to be adopted.
    basis: Option<(u64, [u8; 32], [u8; 32])>,
    /// Same triple, set when a checkpoint is cut and *taken* by the
    /// embedding loop to gossip its certificate share.
    announce: Option<(u64, [u8; 32], [u8; 32])>,
    /// The assembled certificate for the newest checkpoint, once a quorum's
    /// shares matched — shipped with snapshot-ahead state replies and
    /// served to light clients.
    latest_cert: Option<CheckpointCert>,
    /// Where the certificate is persisted across restarts (segmented opens
    /// only).
    cert_path: Option<std::path::PathBuf>,
    /// Chunks verified against a certified state root by remote installs
    /// (observability for the verified-transfer path).
    chunks_verified: u64,
    /// Execution lanes for the parallel EXECUTE stage (1 = serial).
    exec_lanes: usize,
    /// Worker pool for laned execution, present iff `exec_lanes > 1`.
    exec_pool: Option<crate::exec::ExecPool>,
    /// Accumulated lane-planner accounting across applied batches.
    exec_stats: crate::exec::ConflictStats,
}

impl<A: Application> std::fmt::Debug for DurableApp<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableApp")
            .field("batches_applied", &self.batches_applied)
            .field("policy", &self.engine.policy())
            .finish_non_exhaustive()
    }
}

impl<A: Application> DurableApp<A> {
    /// Opens (or recovers) a durable app rooted at `dir` with the default
    /// group-commit (0/1-Persistence) engine over a segmented log.
    ///
    /// On recovery the newest snapshot is installed and only the logged
    /// post-checkpoint suffix is replayed, restoring exactly the pre-crash
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open(app: A, dir: impl AsRef<Path>, checkpoint_period: u64) -> io::Result<Self> {
        Self::open_with_policy(app, dir, checkpoint_period, SyncPolicy::Sync)
    }

    /// Opens with an explicit persistence-ladder rung and default segment
    /// sizing.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open_with_policy(
        app: A,
        dir: impl AsRef<Path>,
        checkpoint_period: u64,
        policy: SyncPolicy,
    ) -> io::Result<Self> {
        Self::open_segmented(
            app,
            dir,
            checkpoint_period,
            policy,
            SegmentConfig::default(),
        )
    }

    /// Opens over a segmented log with explicit segment sizing:
    /// [`SyncPolicy::Sync`] (group commit), [`SyncPolicy::Async`]
    /// (λ-persistence), or [`SyncPolicy::None`] (volatile).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open_segmented(
        app: A,
        dir: impl AsRef<Path>,
        checkpoint_period: u64,
        policy: SyncPolicy,
        segments: SegmentConfig,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if policy == SyncPolicy::None {
            // ∞-persistence: nothing survives a restart — start from empty
            // storage instead of silently replaying a stale log/snapshot.
            let _ = std::fs::remove_file(dir.join("batches.log"));
            let _ = std::fs::remove_dir_all(dir.join("segments"));
            let _ = std::fs::remove_dir_all(dir.join("snapshots"));
        }
        let engine = SegmentedEngine::open(dir.join("segments"), policy, segments)?;
        let snapshots = SnapshotStore::open(dir.join("snapshots"))?;
        let mut this = Self::open_with_engine(app, Box::new(engine), snapshots, checkpoint_period)?;
        this.cert_path = Some(dir.join("ckpt_cert.bin"));
        this.load_cert();
        Ok(this)
    }

    /// Opens over a caller-provided engine (dependency injection for tests
    /// and alternative backends).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open_with_engine(
        mut app: A,
        mut engine: Box<dyn DurabilityEngine>,
        snapshots: SnapshotStore,
        checkpoint_period: u64,
    ) -> io::Result<Self> {
        // Recover: snapshot first, then replay only the post-checkpoint log
        // suffix (the prefix was truncated when the checkpoint was cut).
        let mut batches_applied = 0u64;
        let mut frontier: BTreeMap<u64, u64> = BTreeMap::new();
        let mut replies: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
        let mut tip = [0u8; 32];
        let mut basis = None;
        app.reset();
        if let Some(snap) = snapshots.load()? {
            app.install_snapshot(&snap.state);
            batches_applied = snap.covered_block;
            if let Ok(meta) = from_bytes::<SnapshotMeta>(&snap.meta) {
                frontier = meta.frontier.into_iter().collect();
                replies = meta
                    .replies
                    .into_iter()
                    .map(|(client, seq, result)| (client, (seq, result)))
                    .collect();
                tip = meta.tip;
                basis = Some((snap.covered_block, meta.state_root, meta.tip));
            }
        }
        // Consistency guards around the snapshot/log pair. checkpoint()
        // installs the snapshot BEFORE truncating (and both renames are
        // followed by a parent-directory fsync), so a log truncated beyond
        // the recovered snapshot means the store lost data — refuse to
        // open rather than resume with the wrong application state.
        let inconsistent =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if engine.first_index() > batches_applied {
            return Err(inconsistent("log truncated beyond the recovered snapshot"));
        }
        let mut replayed = 0u64;
        let replay_from = batches_applied;
        for index in replay_from..engine.len() {
            let Some(record) = engine.read(index)? else {
                return Err(inconsistent("unreadable record above the snapshot point"));
            };
            let Ok(lb) = from_bytes::<LoggedBatch>(&record) else {
                return Err(inconsistent("undecodable record above the snapshot point"));
            };
            if lb.prev != tip {
                // Resuming here would break the record-index == batch−1
                // invariant for everything the log still holds.
                return Err(inconsistent("log suffix does not chain onto the snapshot"));
            }
            let requests = decode_batch(&lb.value).unwrap_or_default();
            for request in &requests {
                if Self::frontier_admits(&mut frontier, request) {
                    let result = app.execute(request);
                    replies.insert(request.client, (request.seq, result));
                }
            }
            tip = chain_tip_shared(&tip, &lb.value);
            batches_applied = index + 1;
            replayed += 1;
        }
        if engine.len() < batches_applied {
            // A remote snapshot install crashed between the snapshot write
            // and the engine fast-forward: complete it (idempotent).
            engine.fast_forward(batches_applied)?;
        }
        Ok(DurableApp {
            app,
            engine,
            snapshots,
            checkpoint_period: checkpoint_period.max(1),
            batches_applied,
            frontier,
            replies,
            tip,
            replayed_on_recovery: replayed,
            basis,
            announce: None,
            latest_cert: None,
            cert_path: None,
            chunks_verified: 0,
            exec_lanes: 1,
            exec_pool: None,
            exec_stats: crate::exec::ConflictStats::default(),
        })
    }

    /// Switches the EXECUTE stage to `lanes` parallel execution lanes
    /// (1 = the classic serial stage, the default). Re-shards the
    /// application state and, above one lane, spins up a worker pool.
    /// Recovery replay stays serial either way — plan correctness makes the
    /// laned and serial executions state-equivalent, so a serial replay
    /// reproduces a laned pre-crash execution exactly.
    pub fn set_execute_lanes(&mut self, lanes: usize) {
        let lanes = lanes.max(1);
        self.app.configure_lanes(lanes);
        self.exec_lanes = lanes;
        self.exec_pool = (lanes > 1).then(|| crate::exec::ExecPool::new(lanes));
    }

    /// Accumulated lane-planner accounting (all zeros while serial).
    pub fn exec_stats(&self) -> crate::exec::ConflictStats {
        self.exec_stats
    }

    /// Restores a persisted checkpoint certificate, keeping it only when it
    /// still describes the recovered snapshot (a stale one would vouch for
    /// state we no longer hold).
    fn load_cert(&mut self) {
        let Some(path) = &self.cert_path else {
            return;
        };
        let Ok(bytes) = std::fs::read(path) else {
            return;
        };
        if let Ok(cert) = from_bytes::<CheckpointCert>(&bytes) {
            if self.basis == Some((cert.covered, cert.state_root, cert.tip)) {
                self.latest_cert = Some(cert);
            }
        }
    }

    /// The dedup rule shared by live delivery, recovery replay and remote
    /// install: admits (and records) a request exactly when its sequence is
    /// fresh for its client.
    fn frontier_admits(frontier: &mut BTreeMap<u64, u64>, request: &Request) -> bool {
        let seen = frontier
            .get(&request.client)
            .is_some_and(|&s| request.seq <= s);
        if !seen {
            frontier
                .entry(request.client)
                .and_modify(|s| *s = (*s).max(request.seq))
                .or_insert(request.seq);
        }
        !seen
    }

    /// Applies one decided batch durably; returns the per-request results,
    /// aligned with `batch.requests` (the duplicate-stripped list the
    /// ordering core delivered).
    ///
    /// # Errors
    ///
    /// Propagates storage failures; the batch is not considered applied then.
    pub fn apply_batch(&mut self, batch: &OrderedBatch) -> io::Result<Vec<Vec<u8>>> {
        // Log first (write-ahead), then execute. The record stores the RAW
        // decided value + proof, chained onto our tip — encoded field by
        // field (the LoggedBatch layout) so the hot path clones neither the
        // value nor the proof. `flush` is the policy's commit point: one
        // coalesced fsync under group commit, a no-op on the weaker rungs.
        let mut record =
            Vec::with_capacity(32 + batch.value.encoded_len() + batch.proof.encoded_len());
        self.tip.encode(&mut record);
        batch.value.encode(&mut record);
        batch.proof.encode(&mut record);
        self.engine.append(&record)?;
        self.engine.flush()?;
        // Execute EXACTLY the frontier-admitted subset of the raw value —
        // the same rule (over the same bytes) a post-crash replay applies,
        // so replay reproduces this execution even if the ordering core's
        // duplicate filter ever disagrees with the durable frontier (e.g. a
        // restart that lost volatile core state).
        let mut executed: std::collections::HashMap<(u64, u64), Vec<u8>> =
            std::collections::HashMap::new();
        let admitted: Vec<Request> = decode_batch(&batch.value)
            .unwrap_or_default()
            .into_iter()
            .filter(|request| Self::frontier_admits(&mut self.frontier, request))
            .collect();
        if self.exec_lanes > 1 {
            // Laned EXECUTE: plan the admitted batch from the application's
            // static lane hints, fan single-lane runs out on the pool,
            // serialize at cross-lane barriers. The plan keeps within-lane
            // original order and lanes disjoint, so results and post-state
            // are identical to the serial path.
            let hints: Vec<_> = admitted
                .iter()
                .map(|request| self.app.lane_hint(request, self.exec_lanes))
                .collect();
            let plan = crate::exec::plan_batch(&hints, self.exec_lanes);
            self.exec_stats.absorb(&plan.stats);
            let refs: Vec<&Request> = admitted.iter().collect();
            let results =
                crate::exec::run_plan(&mut self.app, &refs, &plan, self.exec_pool.as_ref());
            for (request, result) in admitted.iter().zip(results) {
                self.replies
                    .insert(request.client, (request.seq, result.clone()));
                executed.insert((request.client, request.seq), result);
            }
        } else {
            for request in &admitted {
                let result = self.app.execute(request);
                self.replies
                    .insert(request.client, (request.seq, result.clone()));
                executed.insert((request.client, request.seq), result);
            }
        }
        // Replies align with the core's duplicate-stripped list; a request
        // the durable frontier rejected as already-executed answers empty
        // (the client's earlier reply carried the real result).
        let results = batch
            .requests
            .iter()
            .map(|r| executed.remove(&(r.client, r.seq)).unwrap_or_default())
            .collect();
        self.tip = chain_tip_shared(&self.tip, &batch.value);
        self.batches_applied += 1;
        if self.batches_applied.is_multiple_of(self.checkpoint_period) {
            self.checkpoint()?;
        }
        Ok(results)
    }

    /// The durable dedup frontier, sorted by client — what a freshly built
    /// ordering core must be seeded with after a local restart, so it does
    /// not re-admit (or re-propose) requests the pre-crash incarnation
    /// already delivered.
    pub fn delivered_frontier(&self) -> Vec<(u64, u64)> {
        self.frontier.iter().map(|(&c, &s)| (c, s)).collect()
    }

    /// The durable reply cache: each client's latest `(client, seq, result)`,
    /// sorted by client — what a restarting replica seeds its volatile reply
    /// cache with, so retransmissions of pre-crash deliveries are still
    /// answered instead of silently dropped by the duplicate filter.
    pub fn cached_replies(&self) -> Vec<(u64, u64, Vec<u8>)> {
        self.replies
            .iter()
            .map(|(&c, (s, r))| (c, *s, r.clone()))
            .collect()
    }

    /// Convenience for tests and benchmarks: wraps `requests` in a
    /// synthetic decided batch (empty accept set — fine locally, since
    /// proofs are only *verified* on the state-transfer install path) and
    /// applies it.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn apply_requests(&mut self, requests: &[Request]) -> io::Result<Vec<Vec<u8>>> {
        let value = smartchain_crypto::ValueBytes::from(encode_batch(requests));
        let instance = self.batches_applied + 1;
        let batch = OrderedBatch {
            instance,
            epoch: 0,
            requests: requests.to_vec(),
            proof: std::sync::Arc::new(DecisionProof {
                instance,
                epoch: 0,
                value_hash: value.hash(),
                accepts: Vec::new(),
            }),
            value,
        };
        self.apply_batch(&batch)
    }

    /// Cuts a snapshot now (state + frontier + chain tip) and truncates the
    /// log prefix it covers — O(segment-delete) on the segmented engine.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let state = self.app.take_snapshot();
        let state_root = merkle::chunked_root(&state, merkle::STATE_CHUNK);
        let meta = SnapshotMeta {
            frontier: self.frontier.iter().map(|(&c, &s)| (c, s)).collect(),
            tip: self.tip,
            state_root,
            replies: self
                .replies
                .iter()
                .map(|(&c, (s, r))| (c, *s, r.clone()))
                .collect(),
        };
        let snap = Snapshot {
            covered_block: self.batches_applied,
            state,
            meta: to_bytes(&meta),
        };
        self.snapshots.install(&snap)?;
        let upto = self.batches_applied;
        self.engine.truncate_prefix(upto)?;
        // The new checkpoint obsoletes the previous certificate; announce
        // the new basis so the embedding gossips fresh shares.
        self.basis = Some((self.batches_applied, state_root, self.tip));
        self.announce = self.basis;
        self.latest_cert = None;
        Ok(())
    }

    /// `(covered, state_root, tip)` of the newest local checkpoint.
    pub fn latest_checkpoint_basis(&self) -> Option<(u64, [u8; 32], [u8; 32])> {
        self.basis
    }

    /// One-shot: the basis of a just-cut checkpoint, for the embedding to
    /// sign and gossip as a certificate share. `None` until the next
    /// checkpoint after each take.
    pub fn take_checkpoint_announcement(&mut self) -> Option<(u64, [u8; 32], [u8; 32])> {
        self.announce.take()
    }

    /// The assembled certificate for the newest checkpoint, if any.
    pub fn checkpoint_cert(&self) -> Option<&CheckpointCert> {
        self.latest_cert.as_ref()
    }

    /// Adopts (and persists) an assembled certificate — ignored unless it
    /// matches the newest local checkpoint basis exactly, so a stale or
    /// foreign certificate can never be served for our snapshot.
    ///
    /// # Errors
    ///
    /// Propagates storage failures while persisting.
    pub fn store_checkpoint_cert(&mut self, cert: CheckpointCert) -> io::Result<()> {
        if self.basis != Some((cert.covered, cert.state_root, cert.tip)) {
            return Ok(());
        }
        if let Some(path) = &self.cert_path {
            std::fs::write(path, to_bytes(&cert))?;
        }
        self.latest_cert = Some(cert);
        Ok(())
    }

    /// Chunks verified against a certified state root by remote installs.
    pub fn chunks_verified(&self) -> u64 {
        self.chunks_verified
    }

    /// Builds a light-client [`ReadProof`] for chunk `chunk_index` of the
    /// latest certified checkpoint state. `None` when no certificate has
    /// assembled yet, the snapshot moved on, or the index is out of range —
    /// the caller should simply not answer and let the client retry.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn prove_state_chunk(&self, chunk_index: u64) -> io::Result<Option<ReadProof>> {
        let Some(cert) = self.latest_cert.clone() else {
            return Ok(None);
        };
        let Some(snap) = self.snapshots.load()? else {
            return Ok(None);
        };
        if snap.covered_block != cert.covered {
            return Ok(None);
        }
        let leaves = merkle::chunk_leaves(&snap.state, merkle::STATE_CHUNK);
        let Some(chunk) = leaves.get(chunk_index as usize) else {
            return Ok(None);
        };
        let proof = merkle::prove_chunk(&snap.state, merkle::STATE_CHUNK, chunk_index as usize);
        Ok(Some(ReadProof {
            covered: cert.covered,
            chunk_index,
            chunk: chunk.clone(),
            proof,
            cert,
        }))
    }

    /// Batches applied since genesis.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The batch chain hash after the last applied batch.
    pub fn tip(&self) -> [u8; 32] {
        self.tip
    }

    /// Records the last open had to replay into the application (restart
    /// cost; bounded by the checkpoint interval once a checkpoint exists).
    pub fn replayed_on_recovery(&self) -> u64 {
        self.replayed_on_recovery
    }

    /// What the engine's last open had to scan, for segmented backends.
    pub fn segment_recovery_stats(&self) -> Option<RecoveryStats> {
        self.engine.recovery_stats()
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The engine's persistence policy.
    pub fn policy(&self) -> SyncPolicy {
        self.engine.policy()
    }

    /// Engine write/sync accounting (group-commit coalescing shows up here
    /// as `records` outpacing `syncs`).
    pub fn engine_stats(&self) -> FlushStats {
        self.engine.stats()
    }

    /// Builds the payload of a runtime state-transfer reply for a peer
    /// missing everything from batch `from_batch` on: the current snapshot
    /// (state + meta, when it covers part of the gap) plus the readable
    /// logged suffix — served straight from sealed segments, no full-log
    /// rescan.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn state_reply(&self, from_batch: u64) -> io::Result<StateReply> {
        let from_batch = from_batch.max(1);
        let snap = self.snapshots.load()?;
        let (covered, snapshot, cert) = match snap {
            // Ship the snapshot only when it summarizes batches the
            // requester is missing; otherwise the log suffix suffices.
            Some(s) if s.covered_block >= from_batch => {
                let meta = from_bytes::<SnapshotMeta>(&s.meta).unwrap_or_default();
                let shipped = ShippedSnapshot {
                    state: s.state,
                    meta,
                };
                let cert = self
                    .latest_cert
                    .clone()
                    .filter(|c| c.covered == s.covered_block);
                (s.covered_block, Some(to_bytes(&shipped)), cert)
            }
            _ => (0, None, None),
        };
        // Batch k lives at log record k−1; checkpointing truncates the
        // records a snapshot covers, so the readable suffix starts after
        // max(requested, covered).
        let first_batch = from_batch.max(covered + 1);
        let mut batches = Vec::new();
        for k in first_batch..=self.batches_applied {
            match self.engine.read(k - 1)? {
                Some(record) => batches.push(record),
                None => break, // truncated or lost: ship the contiguous part
            }
        }
        Ok(StateReply {
            covered,
            snapshot,
            first_batch,
            batches,
            cert,
        })
    }

    /// Installs a peer's state-transfer reply: snapshot first (if it runs
    /// ahead of us), then the batch suffix — each record must *chain-hash
    /// onto this replica's tip* (`prev` = our running chain hash), and is
    /// appended to the local engine *and* executed through the dedup
    /// frontier, so the transferred history is as durable here as
    /// locally-ordered history. Decision-proof verification happens in the
    /// caller ([`verify_shipped_suffix`] — the caller holds the view);
    /// this method enforces the structural half — contiguity and chain
    /// linkage — plus the *content* half for snapshots: a snapshot running
    /// ahead of local state installs only with a [`CheckpointCert`] whose
    /// quorum-signed state root the shipped bytes re-chunk to exactly.
    /// Returns the requests applied beyond the snapshot, so the caller can
    /// feed the ordering core's duplicate filter.
    ///
    /// # Errors
    ///
    /// [`InstallError::MissingCert`] / [`BadCert`](InstallError::BadCert) /
    /// [`TipMismatch`](InstallError::TipMismatch) /
    /// [`StateRootMismatch`](InstallError::StateRootMismatch) when the
    /// snapshot's certification fails; [`Rejected`](InstallError::Rejected)
    /// when the reply does not line up with local state (a gap, a chain
    /// break, or an undecodable batch); storage failures propagate as
    /// [`Storage`](InstallError::Storage). On error the caller should
    /// re-request — nothing is half-applied beyond what already succeeded.
    pub fn install_remote(
        &mut self,
        view: &View,
        covered: u64,
        snapshot: Option<Vec<u8>>,
        cert: Option<&CheckpointCert>,
        first_batch: u64,
        batches: &[Vec<u8>],
    ) -> Result<Vec<Request>, InstallError> {
        if let Some(blob) = snapshot {
            let shipped = from_bytes::<ShippedSnapshot>(&blob)
                .map_err(|_| InstallError::Rejected("undecodable shipped snapshot"))?;
            if covered > self.batches_applied {
                if self.engine.len() > covered {
                    return Err(InstallError::Rejected("snapshot older than local log tail"));
                }
                // Trust scope: decision proofs vouch for *batches*; raw
                // snapshot bytes are opaque to them. The shipper must
                // present the quorum's checkpoint certificate, and the
                // shipped state must re-chunk to exactly the certified
                // root — a tampered chunk fails here, before anything is
                // applied.
                let cert = cert.ok_or(InstallError::MissingCert)?;
                if cert.covered != covered || !cert.verify(view) {
                    return Err(InstallError::BadCert);
                }
                if cert.tip != shipped.meta.tip {
                    return Err(InstallError::TipMismatch);
                }
                if shipped.meta.state_root != cert.state_root
                    || merkle::chunked_root(&shipped.state, merkle::STATE_CHUNK) != cert.state_root
                {
                    return Err(InstallError::StateRootMismatch);
                }
                self.chunks_verified +=
                    shipped.state.len().div_ceil(merkle::STATE_CHUNK).max(1) as u64;
                self.app.reset();
                self.app.install_snapshot(&shipped.state);
                self.snapshots.install(&Snapshot {
                    covered_block: covered,
                    state: shipped.state,
                    meta: to_bytes(&shipped.meta),
                })?;
                // Skip the engine to the covered point (O(1) manifest update
                // on segmented logs): the snapshot is the durable
                // representation of that prefix.
                self.engine.fast_forward(covered)?;
                self.batches_applied = covered;
                self.frontier = shipped.meta.frontier.into_iter().collect();
                self.replies = shipped
                    .meta
                    .replies
                    .into_iter()
                    .map(|(client, seq, result)| (client, (seq, result)))
                    .collect();
                self.tip = shipped.meta.tip;
                // The certified checkpoint is now ours: adopt its basis and
                // persist the certificate so we can serve it onward.
                self.basis = Some((covered, cert.state_root, cert.tip));
                self.store_checkpoint_cert(cert.clone())?;
            }
        }
        let mut applied = Vec::new();
        for (i, record) in batches.iter().enumerate() {
            let k = first_batch + i as u64;
            if k <= self.batches_applied {
                continue; // already have it
            }
            if k != self.batches_applied + 1 {
                return Err(InstallError::Rejected("state reply leaves a gap"));
            }
            let lb = from_bytes::<LoggedBatch>(record)
                .map_err(|_| InstallError::Rejected("undecodable shipped batch"))?;
            if lb.prev != self.tip {
                return Err(InstallError::Rejected(
                    "shipped suffix does not chain onto local tip",
                ));
            }
            let requests = decode_batch(&lb.value)
                .map_err(|_| InstallError::Rejected("undecodable shipped value"))?;
            self.engine.append(record)?;
            self.engine.flush()?;
            for request in requests {
                if Self::frontier_admits(&mut self.frontier, &request) {
                    let result = self.app.execute(&request);
                    self.replies.insert(request.client, (request.seq, result));
                    applied.push(request);
                }
            }
            self.tip = chain_tip_shared(&self.tip, &lb.value);
            self.batches_applied += 1;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;
    use smartchain_crypto::keys::{Backend, SecretKey};

    /// A 4-replica view with deterministic sim keys, for certificate tests.
    fn test_view() -> (View, Vec<SecretKey>) {
        let secrets: Vec<SecretKey> = (0..4)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 50; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        (view, secrets)
    }

    /// Signs `d`'s newest checkpoint basis with the first `signers` keys and
    /// stores the assembled certificate (what the runtime's share gossip
    /// produces).
    fn certify(
        d: &mut DurableApp<CounterApp>,
        secrets: &[SecretKey],
        signers: usize,
    ) -> CheckpointCert {
        let (covered, state_root, tip) = d.latest_checkpoint_basis().unwrap();
        let payload = ckpt_sign_payload(covered, &state_root, &tip);
        let cert = CheckpointCert {
            covered,
            state_root,
            tip,
            signatures: (0..signers)
                .map(|r| (r, secrets[r].sign(&payload)))
                .collect(),
        };
        d.store_checkpoint_cert(cert.clone()).unwrap();
        cert
    }

    fn req(client: u64, seq: u64, add: u8) -> Request {
        Request {
            client,
            seq,
            payload: vec![add],
            signature: None,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-durable-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp("reopen");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
            d.apply_requests(&[req(1, 0, 5), req(2, 0, 7)]).unwrap();
            d.apply_requests(&[req(1, 1, 3)]).unwrap();
            assert_eq!(d.app().sum(1), 8);
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
        assert_eq!(d.app().sum(1), 8);
        assert_eq!(d.app().sum(2), 7);
        assert_eq!(d.batches_applied(), 2);
        assert_eq!(d.replayed_on_recovery(), 2, "no checkpoint: replay all");
    }

    #[test]
    fn checkpoint_then_recover_replays_only_the_suffix() {
        let dir = tmp("ckpt");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
            for i in 0..5u64 {
                d.apply_requests(&[req(1, i, 1)]).unwrap();
            }
            assert_eq!(d.app().sum(1), 5);
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
        assert_eq!(d.app().sum(1), 5);
        assert_eq!(d.batches_applied(), 5);
        // Checkpoints at 2 and 4 truncated the prefix: recovery replays
        // exactly the one post-checkpoint batch.
        assert_eq!(d.replayed_on_recovery(), 1);
    }

    #[test]
    fn group_commit_engine_syncs_once_per_batch() {
        let dir = tmp("stats");
        let mut d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
        for i in 0..4u64 {
            d.apply_requests(&[req(1, i, 1)]).unwrap();
        }
        let stats = d.engine_stats();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.syncs, 4, "sequential batches: one commit point each");
        assert_eq!(d.policy(), SyncPolicy::Sync);
    }

    #[test]
    fn none_policy_is_volatile_across_restarts() {
        let dir = tmp("volatile");
        {
            let mut d =
                DurableApp::open_with_policy(CounterApp::new(), &dir, 100, SyncPolicy::None)
                    .unwrap();
            d.apply_requests(&[req(1, 0, 9)]).unwrap();
            assert_eq!(d.app().sum(1), 9);
        }
        // ∞-persistence: a restart starts from nothing.
        let d =
            DurableApp::open_with_policy(CounterApp::new(), &dir, 100, SyncPolicy::None).unwrap();
        assert_eq!(d.app().sum(1), 0, "no state may survive the volatile rung");
        assert_eq!(d.batches_applied(), 0);
    }

    /// State transfer between two DurableApps: a fresh replica installs a
    /// peer's reply (snapshot + suffix) and converges, durably.
    #[test]
    fn remote_state_install_converges_and_survives_restart() {
        let src_dir = tmp("st-src");
        let dst_dir = tmp("st-dst");
        let mut src = DurableApp::open(CounterApp::new(), &src_dir, 3).unwrap();
        for i in 0..8u64 {
            src.apply_requests(&[req(1, i, 2)]).unwrap();
        }
        assert_eq!(src.app().sum(1), 16);
        // Checkpoint at period 3 → snapshot covers 6, log holds 7..8. The
        // snapshot runs ahead of the fresh receiver, so the reply must carry
        // the quorum's checkpoint certificate.
        let (view, secrets) = test_view();
        certify(&mut src, &secrets, 3);
        let reply = src.state_reply(1).unwrap();
        assert_eq!(reply.covered, 6);
        assert!(reply.snapshot.is_some());
        assert!(reply.cert.is_some(), "reply ships the stored certificate");
        assert_eq!(reply.first_batch, 7);
        assert_eq!(reply.batches.len(), 2);
        {
            let mut dst = DurableApp::open(CounterApp::new(), &dst_dir, 100).unwrap();
            let applied = dst
                .install_remote(
                    &view,
                    reply.covered,
                    reply.snapshot,
                    reply.cert.as_ref(),
                    reply.first_batch,
                    &reply.batches,
                )
                .unwrap();
            assert_eq!(dst.chunks_verified(), 1, "snapshot verified chunkwise");
            assert_eq!(applied.len(), 2, "only the post-snapshot suffix applies");
            assert_eq!(dst.batches_applied(), 8);
            assert_eq!(dst.app().sum(1), 16);
            assert_eq!(dst.tip(), src.tip(), "transferred chains share the tip");
        }
        // The transferred state is durable: a reopen recovers it locally.
        let dst = DurableApp::open(CounterApp::new(), &dst_dir, 100).unwrap();
        assert_eq!(dst.batches_applied(), 8);
        assert_eq!(dst.app().sum(1), 16);
    }

    /// A replica that already holds a prefix receives only the missing tail.
    #[test]
    fn remote_state_install_skips_known_prefix_and_rejects_gaps() {
        let src_dir = tmp("st2-src");
        let dst_dir = tmp("st2-dst");
        let mut src = DurableApp::open(CounterApp::new(), &src_dir, 100).unwrap();
        let mut dst = DurableApp::open(CounterApp::new(), &dst_dir, 100).unwrap();
        for i in 0..5u64 {
            src.apply_requests(&[req(1, i, 1)]).unwrap();
            if i < 3 {
                dst.apply_requests(&[req(1, i, 1)]).unwrap();
            }
        }
        let (view, _) = test_view();
        let reply = src.state_reply(4).unwrap();
        assert_eq!((reply.covered, reply.first_batch), (0, 4));
        assert!(reply.snapshot.is_none());
        let applied = dst
            .install_remote(
                &view,
                reply.covered,
                reply.snapshot.clone(),
                None,
                reply.first_batch,
                &reply.batches,
            )
            .unwrap();
        assert_eq!(applied.len(), 2);
        assert_eq!(dst.app().sum(1), 5);
        // A reply that skips ahead is rejected, nothing applied.
        let err = dst
            .install_remote(&view, 0, None, None, 9, &reply.batches)
            .unwrap_err();
        assert!(matches!(err, InstallError::Rejected(_)), "{err}");
        assert_eq!(dst.batches_applied(), 5);
    }

    /// A shipped suffix from a diverging history (its records do not chain
    /// onto the requester's tip) is rejected before anything is appended.
    #[test]
    fn remote_suffix_must_chain_onto_local_tip() {
        let a_dir = tmp("chain-a");
        let b_dir = tmp("chain-b");
        let mut a = DurableApp::open(CounterApp::new(), &a_dir, 100).unwrap();
        let mut b = DurableApp::open(CounterApp::new(), &b_dir, 100).unwrap();
        // Histories diverge at batch 1.
        a.apply_requests(&[req(1, 0, 1)]).unwrap();
        b.apply_requests(&[req(1, 0, 2)]).unwrap();
        a.apply_requests(&[req(1, 1, 1)]).unwrap();
        let reply = a.state_reply(2).unwrap();
        let (view, _) = test_view();
        let err = b
            .install_remote(&view, 0, None, None, reply.first_batch, &reply.batches)
            .unwrap_err();
        assert!(matches!(err, InstallError::Rejected(_)), "{err}");
        assert_eq!(b.batches_applied(), 1, "nothing appended");
        assert_eq!(b.app().sum(1), 2, "state untouched");
    }

    /// The runtime trust scope (issue satellite): a snapshot running ahead
    /// of local state is NOT shipper-trusted. Without a certificate the
    /// install is refused; with a certificate, a single tampered chunk in
    /// the shipped state flips the chunked root and the install is refused
    /// — in both cases before any state is applied.
    #[test]
    fn snapshot_ahead_requires_cert_and_rejects_tampered_chunks() {
        let src_dir = tmp("tamper-src");
        let mut src = DurableApp::open(CounterApp::new(), &src_dir, 4).unwrap();
        // Enough distinct clients that the snapshot spans several chunks
        // (CounterApp serializes one record per client).
        for i in 0..8u64 {
            let reqs: Vec<Request> = (0..24).map(|c| req(100 + c, i, 1)).collect();
            src.apply_requests(&reqs).unwrap();
        }
        let (view, secrets) = test_view();
        let cert = certify(&mut src, &secrets, 3);
        assert!(cert.verify(&view));
        let reply = src.state_reply(1).unwrap();
        assert_eq!(reply.covered, 8);
        let fresh = |tag: &str| DurableApp::open(CounterApp::new(), tmp(tag), 100).unwrap();

        // No certificate → refused.
        let err = fresh("tamper-nocert")
            .install_remote(
                &view,
                reply.covered,
                reply.snapshot.clone(),
                None,
                reply.first_batch,
                &reply.batches,
            )
            .unwrap_err();
        assert!(matches!(err, InstallError::MissingCert), "{err}");

        // Sub-quorum certificate → refused.
        let weak = CheckpointCert {
            signatures: cert.signatures[..2].to_vec(),
            ..cert.clone()
        };
        let err = fresh("tamper-weak")
            .install_remote(
                &view,
                reply.covered,
                reply.snapshot.clone(),
                Some(&weak),
                reply.first_batch,
                &reply.batches,
            )
            .unwrap_err();
        assert!(matches!(err, InstallError::BadCert), "{err}");

        // Tamper one chunk of the shipped state → StateRootMismatch.
        let shipped: ShippedSnapshot = from_bytes(reply.snapshot.as_ref().unwrap()).unwrap();
        assert!(
            shipped.state.len() > merkle::STATE_CHUNK,
            "state must span multiple chunks for the test to bite"
        );
        let mut tampered = shipped.clone();
        tampered.state[merkle::STATE_CHUNK + 3] ^= 0x40;
        let mut dst = fresh("tamper-chunk");
        let err = dst
            .install_remote(
                &view,
                reply.covered,
                Some(to_bytes(&tampered)),
                Some(&cert),
                reply.first_batch,
                &reply.batches,
            )
            .unwrap_err();
        assert!(matches!(err, InstallError::StateRootMismatch), "{err}");
        assert_eq!(dst.batches_applied(), 0, "nothing applied");
        assert_eq!(dst.chunks_verified(), 0);

        // The untampered reply with the real certificate installs fine.
        let mut ok = fresh("tamper-ok");
        ok.install_remote(
            &view,
            reply.covered,
            reply.snapshot.clone(),
            Some(&cert),
            reply.first_batch,
            &reply.batches,
        )
        .unwrap();
        assert_eq!(ok.batches_applied(), 8);
        assert_eq!(ok.app().sum(100), 8);
        assert!(ok.chunks_verified() > 1);
        // The receiver adopted the certificate and can now serve it onward.
        assert_eq!(ok.checkpoint_cert(), Some(&cert));
    }

    /// Light-client read proofs: a certified replica proves a state chunk;
    /// the proof verifies against nothing but the view, and dies under any
    /// tampering (chunk bytes, index, or certificate).
    #[test]
    fn read_proofs_verify_and_reject_tampering() {
        let dir = tmp("readproof");
        let mut d = DurableApp::open(CounterApp::new(), &dir, 4).unwrap();
        for i in 0..4u64 {
            let reqs: Vec<Request> = (0..24).map(|c| req(300 + c, i, 2)).collect();
            d.apply_requests(&reqs).unwrap();
        }
        let (view, secrets) = test_view();
        assert!(
            d.prove_state_chunk(0).unwrap().is_none(),
            "no proof before a certificate assembles"
        );
        certify(&mut d, &secrets, 3);
        let proof = d.prove_state_chunk(1).unwrap().expect("certified chunk");
        assert!(proof.verify(&view));
        // Round-trips through the wire encoding.
        let back: ReadProof = from_bytes(&to_bytes(&proof)).unwrap();
        assert_eq!(back, proof);
        // Tampered chunk bytes fail.
        let mut bad = proof.clone();
        bad.chunk[0] ^= 1;
        assert!(!bad.verify(&view));
        // A proof replayed at another index fails.
        let mut moved = proof.clone();
        moved.chunk_index = 0;
        assert!(!moved.verify(&view));
        // A certificate signed by too few replicas fails.
        let mut weak = proof.clone();
        weak.cert.signatures.truncate(2);
        assert!(!weak.verify(&view));
        // Out-of-range chunks are unanswerable, not panics.
        assert!(d.prove_state_chunk(1 << 20).unwrap().is_none());
    }

    /// The stored certificate survives a restart alongside its snapshot.
    #[test]
    fn checkpoint_cert_persists_across_reopen() {
        let dir = tmp("certpersist");
        let cert = {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
            for i in 0..4u64 {
                d.apply_requests(&[req(1, i, 1)]).unwrap();
            }
            let (_, secrets) = test_view();
            certify(&mut d, &secrets, 3)
        };
        let d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
        assert_eq!(d.checkpoint_cert(), Some(&cert));
        assert_eq!(
            d.latest_checkpoint_basis(),
            Some((cert.covered, cert.state_root, cert.tip))
        );
    }

    #[test]
    fn async_policy_skips_syncs() {
        let dir = tmp("async");
        let mut d =
            DurableApp::open_with_policy(CounterApp::new(), &dir, 100, SyncPolicy::Async).unwrap();
        for i in 0..4u64 {
            d.apply_requests(&[req(1, i, 1)]).unwrap();
        }
        let stats = d.engine_stats();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.syncs, 0, "λ-persistence never fsyncs on the ack path");
    }

    /// Replaying the raw decided values reproduces the live execution even
    /// when a decided batch contained a duplicate the core had stripped.
    #[test]
    fn recovery_replay_dedups_like_live_delivery() {
        let dir = tmp("dedup");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
            d.apply_requests(&[req(1, 1, 5)]).unwrap();
            // A later decided value carries a retransmission of (1, 1): the
            // core delivered only the fresh request; the raw value keeps
            // both. Emulate by logging the raw value with the dup inside.
            let dup = req(1, 1, 5);
            let fresh = req(1, 2, 3);
            let value = smartchain_crypto::ValueBytes::from(encode_batch(&[dup, fresh.clone()]));
            let instance = d.batches_applied() + 1;
            let batch = OrderedBatch {
                instance,
                epoch: 0,
                requests: vec![fresh],
                proof: std::sync::Arc::new(DecisionProof {
                    instance,
                    epoch: 0,
                    value_hash: value.hash(),
                    accepts: Vec::new(),
                }),
                value,
            };
            d.apply_batch(&batch).unwrap();
            assert_eq!(d.app().sum(1), 8, "duplicate executed once");
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
        assert_eq!(d.app().sum(1), 8, "replay also executes it once");
    }

    #[test]
    fn segmented_recovery_scans_only_the_tail() {
        let dir = tmp("seg-stats");
        let segments = SegmentConfig {
            records_per_segment: 4,
        };
        {
            let mut d =
                DurableApp::open_segmented(CounterApp::new(), &dir, 8, SyncPolicy::Sync, segments)
                    .unwrap();
            for i in 0..18u64 {
                d.apply_requests(&[req(1, i, 1)]).unwrap();
            }
        }
        let d = DurableApp::open_segmented(CounterApp::new(), &dir, 8, SyncPolicy::Sync, segments)
            .unwrap();
        assert_eq!(d.app().sum(1), 18);
        // Checkpoint at 16 truncated records 0..16 (segments [0..4) ..
        // [12..16) deleted); recovery replays batches 17..18 and scans only
        // the active segment.
        assert_eq!(d.replayed_on_recovery(), 2);
        let stats = d.segment_recovery_stats().expect("segmented engine");
        assert_eq!(stats.segments_scanned, 1);
        assert_eq!(stats.records_scanned, 2);
    }
}
