//! Real-storage durable delivery (the non-simulated counterpart of the
//! Dura-SMaRt pipeline): decided batches are appended to a group-commit log
//! on actual files, snapshots are cut every `checkpoint_period` batches, and
//! recovery replays snapshot + suffix. The `quickstart` example and the
//! integration tests exercise this against real disks.

use crate::app::Application;
use crate::types::{decode_batch, encode_batch, Request};
use smartchain_storage::log::FileLog;
use smartchain_storage::snapshot::{Snapshot, SnapshotStore};
use smartchain_storage::wal::BatchingWriter;
use smartchain_storage::{RecordLog, SyncPolicy};
use std::io;
use std::path::Path;

/// A durable, checkpointed application host.
///
/// Wraps an [`Application`] with a write-ahead batch log and snapshot store:
/// every delivered batch is logged durably before (or while) executing, and
/// every `checkpoint_period` batches the application state is snapshotted and
/// the log truncated.
pub struct DurableApp<A: Application> {
    app: A,
    writer: BatchingWriter<FileLog>,
    snapshots: SnapshotStore,
    checkpoint_period: u64,
    batches_applied: u64,
}

impl<A: Application> std::fmt::Debug for DurableApp<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableApp")
            .field("batches_applied", &self.batches_applied)
            .finish_non_exhaustive()
    }
}

impl<A: Application> DurableApp<A> {
    /// Opens (or recovers) a durable app rooted at `dir`.
    ///
    /// On recovery the newest snapshot is installed and the logged suffix is
    /// replayed, restoring exactly the pre-crash state.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open(mut app: A, dir: impl AsRef<Path>, checkpoint_period: u64) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let log = FileLog::open(dir.join("batches.log"), SyncPolicy::Async)?;
        let snapshots = SnapshotStore::open(dir.join("snapshots"))?;
        // Recover: snapshot first, then replay the log suffix.
        let mut batches_applied = 0u64;
        app.reset();
        if let Some(snap) = snapshots.load()? {
            app.install_snapshot(&snap.state);
            batches_applied = snap.covered_block;
        }
        for index in batches_applied..log.len() {
            if let Some(record) = log.read(index)? {
                if let Ok(requests) = decode_batch(&record) {
                    for request in &requests {
                        let _ = app.execute(request);
                    }
                    batches_applied = index + 1;
                }
            }
        }
        Ok(DurableApp {
            app,
            writer: BatchingWriter::new(log),
            snapshots,
            checkpoint_period: checkpoint_period.max(1),
            batches_applied,
        })
    }

    /// Applies one decided batch durably; returns the per-request results.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; the batch is not considered applied then.
    pub fn apply_batch(&mut self, requests: &[Request]) -> io::Result<Vec<Vec<u8>>> {
        // Log first (write-ahead), then execute.
        self.writer.submit(encode_batch(requests));
        self.writer.flush()?;
        let results = requests.iter().map(|r| self.app.execute(r)).collect();
        self.batches_applied += 1;
        if self.batches_applied % self.checkpoint_period == 0 {
            self.checkpoint()?;
        }
        Ok(results)
    }

    /// Cuts a snapshot now and truncates the log prefix it covers.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let snap = Snapshot {
            covered_block: self.batches_applied,
            state: self.app.take_snapshot(),
        };
        self.snapshots.install(&snap)?;
        let upto = self.batches_applied;
        self.writer.inner_mut().truncate_prefix(upto)?;
        Ok(())
    }

    /// Batches applied since genesis.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;

    fn req(client: u64, seq: u64, add: u8) -> Request {
        Request { client, seq, payload: vec![add], signature: None }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-durable-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp("reopen");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
            d.apply_batch(&[req(1, 0, 5), req(2, 0, 7)]).unwrap();
            d.apply_batch(&[req(1, 1, 3)]).unwrap();
            assert_eq!(d.app().sum(1), 8);
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
        assert_eq!(d.app().sum(1), 8);
        assert_eq!(d.app().sum(2), 7);
        assert_eq!(d.batches_applied(), 2);
    }

    #[test]
    fn checkpoint_then_recover() {
        let dir = tmp("ckpt");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
            for i in 0..5u64 {
                d.apply_batch(&[req(1, i, 1)]).unwrap();
            }
            assert_eq!(d.app().sum(1), 5);
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
        assert_eq!(d.app().sum(1), 5);
        assert_eq!(d.batches_applied(), 5);
    }
}
