//! Real-storage durable delivery (the non-simulated counterpart of the
//! Dura-SMaRt pipeline): decided batches are appended to a durability engine
//! — group-commit WAL on actual files by default — snapshots are cut every
//! `checkpoint_period` batches, and recovery replays snapshot + suffix. The
//! `quickstart` example and the integration tests exercise this against real
//! disks.
//!
//! The persistence policy is pluggable: [`DurableApp::open`] uses the
//! paper's 0/1-Persistence group-commit engine, while
//! [`DurableApp::open_with_engine`] accepts any [`DurabilityEngine`] — the
//! same trait the simulated `ChainNode` routes its persistence ladder
//! through, so both deployments share one durability implementation.

use crate::app::Application;
use crate::types::{decode_batch, encode_batch, Request};
use smartchain_storage::engine::{AsyncEngine, GroupCommitEngine, MemoryEngine};
use smartchain_storage::log::FileLog;
use smartchain_storage::snapshot::{Snapshot, SnapshotStore};
use smartchain_storage::wal::FlushStats;
use smartchain_storage::{DurabilityEngine, RecordLog, SyncPolicy};
use std::io;
use std::path::Path;

/// The durable half of a runtime state-transfer reply (the fields of
/// `SmrMsg::StateRep` sans the ordering-layer dedup frontier).
#[derive(Clone, Debug)]
pub struct StateReply {
    /// Batches summarized by `snapshot` (0 = none shipped).
    pub covered: u64,
    /// Serialized application state covering batches `1..=covered`.
    pub snapshot: Option<Vec<u8>>,
    /// Batch number of `batches[0]`.
    pub first_batch: u64,
    /// Encoded request batches, consecutive from `first_batch`.
    pub batches: Vec<Vec<u8>>,
}

/// A durable, checkpointed application host.
///
/// Wraps an [`Application`] with a write-ahead batch log and snapshot store:
/// every delivered batch is logged through the engine before (or while)
/// executing, and every `checkpoint_period` batches the application state is
/// snapshotted and the log truncated.
pub struct DurableApp<A: Application> {
    app: A,
    engine: Box<dyn DurabilityEngine>,
    snapshots: SnapshotStore,
    checkpoint_period: u64,
    batches_applied: u64,
}

impl<A: Application> std::fmt::Debug for DurableApp<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableApp")
            .field("batches_applied", &self.batches_applied)
            .field("policy", &self.engine.policy())
            .finish_non_exhaustive()
    }
}

impl<A: Application> DurableApp<A> {
    /// Opens (or recovers) a durable app rooted at `dir` with the default
    /// group-commit (0/1-Persistence) engine over a [`FileLog`].
    ///
    /// On recovery the newest snapshot is installed and the logged suffix is
    /// replayed, restoring exactly the pre-crash state.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open(app: A, dir: impl AsRef<Path>, checkpoint_period: u64) -> io::Result<Self> {
        Self::open_with_policy(app, dir, checkpoint_period, SyncPolicy::Sync)
    }

    /// Opens with an explicit persistence-ladder rung: [`SyncPolicy::Sync`]
    /// (group commit), [`SyncPolicy::Async`] (λ-persistence), or
    /// [`SyncPolicy::None`] (log kept but treated as volatile).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open_with_policy(
        app: A,
        dir: impl AsRef<Path>,
        checkpoint_period: u64,
        policy: SyncPolicy,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        if policy == SyncPolicy::None {
            // ∞-persistence: nothing survives a restart — start from empty
            // storage instead of silently replaying a stale log/snapshot.
            let _ = std::fs::remove_file(dir.join("batches.log"));
            let _ = std::fs::remove_dir_all(dir.join("snapshots"));
        }
        // The engine layer owns sync decisions; the file itself is async.
        let log = FileLog::open(dir.join("batches.log"), SyncPolicy::Async)?;
        let engine: Box<dyn DurabilityEngine> = match policy {
            SyncPolicy::Sync => Box::new(GroupCommitEngine::new(log)),
            SyncPolicy::Async => Box::new(AsyncEngine::new(log)),
            SyncPolicy::None => Box::new(MemoryEngine::new(log)),
        };
        let snapshots = SnapshotStore::open(dir.join("snapshots"))?;
        Self::open_with_engine(app, engine, snapshots, checkpoint_period)
    }

    /// Opens over a caller-provided engine (dependency injection for tests
    /// and alternative backends).
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn open_with_engine(
        mut app: A,
        engine: Box<dyn DurabilityEngine>,
        snapshots: SnapshotStore,
        checkpoint_period: u64,
    ) -> io::Result<Self> {
        // Recover: snapshot first, then replay the log suffix.
        let mut batches_applied = 0u64;
        app.reset();
        if let Some(snap) = snapshots.load()? {
            app.install_snapshot(&snap.state);
            batches_applied = snap.covered_block;
        }
        let replay_from = batches_applied;
        for index in replay_from..engine.len() {
            if let Some(record) = engine.read(index)? {
                if let Ok(requests) = decode_batch(&record) {
                    for request in &requests {
                        let _ = app.execute(request);
                    }
                    batches_applied = index + 1;
                }
            }
        }
        Ok(DurableApp {
            app,
            engine,
            snapshots,
            checkpoint_period: checkpoint_period.max(1),
            batches_applied,
        })
    }

    /// Applies one decided batch durably; returns the per-request results.
    ///
    /// # Errors
    ///
    /// Propagates storage failures; the batch is not considered applied then.
    pub fn apply_batch(&mut self, requests: &[Request]) -> io::Result<Vec<Vec<u8>>> {
        // Log first (write-ahead), then execute. `flush` is the policy's
        // commit point: one coalesced fsync under group commit, a no-op on
        // the weaker rungs.
        self.engine.append(&encode_batch(requests))?;
        self.engine.flush()?;
        let results = requests.iter().map(|r| self.app.execute(r)).collect();
        self.batches_applied += 1;
        if self.batches_applied.is_multiple_of(self.checkpoint_period) {
            self.checkpoint()?;
        }
        Ok(results)
    }

    /// Cuts a snapshot now and truncates the log prefix it covers.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let snap = Snapshot {
            covered_block: self.batches_applied,
            state: self.app.take_snapshot(),
        };
        self.snapshots.install(&snap)?;
        let upto = self.batches_applied;
        self.engine.truncate_prefix(upto)?;
        Ok(())
    }

    /// Batches applied since genesis.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The engine's persistence policy.
    pub fn policy(&self) -> SyncPolicy {
        self.engine.policy()
    }

    /// Engine write/sync accounting (group-commit coalescing shows up here
    /// as `records` outpacing `syncs`).
    pub fn engine_stats(&self) -> FlushStats {
        self.engine.stats()
    }

    /// Builds the payload of a runtime state-transfer reply for a peer
    /// missing everything from batch `from_batch` on: the current snapshot
    /// when it covers part of the gap, plus the readable logged suffix.
    ///
    /// # Errors
    ///
    /// Propagates storage failures.
    pub fn state_reply(&self, from_batch: u64) -> io::Result<StateReply> {
        let from_batch = from_batch.max(1);
        let snap = self.snapshots.load()?;
        let (covered, snapshot) = match snap {
            // Ship the snapshot only when it summarizes batches the
            // requester is missing; otherwise the log suffix suffices.
            Some(s) if s.covered_block >= from_batch => (s.covered_block, Some(s.state)),
            _ => (0, None),
        };
        // Batch k lives at log record k−1; checkpointing truncates the
        // records a snapshot covers, so the readable suffix starts after
        // max(requested, covered).
        let first_batch = from_batch.max(covered + 1);
        let mut batches = Vec::new();
        for k in first_batch..=self.batches_applied {
            match self.engine.read(k - 1)? {
                Some(record) => batches.push(record),
                None => break, // truncated or lost: ship the contiguous part
            }
        }
        Ok(StateReply {
            covered,
            snapshot,
            first_batch,
            batches,
        })
    }

    /// Installs a peer's state-transfer reply: snapshot first (if it runs
    /// ahead of us), then the batch suffix — each batch is appended to the
    /// local engine *and* executed, so the transferred history is as durable
    /// here as locally-ordered history. Returns the requests applied beyond
    /// the snapshot, so the caller can feed the ordering core's duplicate
    /// filter.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the reply does not line up with local state (a
    /// gap, or an undecodable batch); storage failures propagate. On error
    /// the caller should re-request — nothing is half-applied beyond what
    /// already succeeded.
    pub fn install_remote(
        &mut self,
        covered: u64,
        snapshot: Option<Vec<u8>>,
        first_batch: u64,
        batches: &[Vec<u8>],
    ) -> io::Result<Vec<Request>> {
        if let Some(state) = snapshot {
            if covered > self.batches_applied {
                if self.engine.len() > covered {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "snapshot older than local log tail",
                    ));
                }
                self.app.reset();
                self.app.install_snapshot(&state);
                self.snapshots.install(&Snapshot {
                    covered_block: covered,
                    state,
                })?;
                // Pad the engine so record index == batch − 1 stays true for
                // the suffix, then drop the pad (it carries no data — the
                // snapshot is the durable representation of that prefix).
                while self.engine.len() < covered {
                    self.engine.append(&[])?;
                }
                self.engine.flush()?;
                self.engine.truncate_prefix(covered)?;
                self.batches_applied = covered;
            }
        }
        let mut applied = Vec::new();
        for (i, record) in batches.iter().enumerate() {
            let k = first_batch + i as u64;
            if k <= self.batches_applied {
                continue; // already have it
            }
            if k != self.batches_applied + 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "state reply leaves a gap",
                ));
            }
            let requests = decode_batch(record).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "undecodable shipped batch")
            })?;
            self.engine.append(record)?;
            self.engine.flush()?;
            for request in &requests {
                let _ = self.app.execute(request);
            }
            self.batches_applied += 1;
            applied.extend(requests);
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;

    fn req(client: u64, seq: u64, add: u8) -> Request {
        Request {
            client,
            seq,
            payload: vec![add],
            signature: None,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-durable-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp("reopen");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
            d.apply_batch(&[req(1, 0, 5), req(2, 0, 7)]).unwrap();
            d.apply_batch(&[req(1, 1, 3)]).unwrap();
            assert_eq!(d.app().sum(1), 8);
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
        assert_eq!(d.app().sum(1), 8);
        assert_eq!(d.app().sum(2), 7);
        assert_eq!(d.batches_applied(), 2);
    }

    #[test]
    fn checkpoint_then_recover() {
        let dir = tmp("ckpt");
        {
            let mut d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
            for i in 0..5u64 {
                d.apply_batch(&[req(1, i, 1)]).unwrap();
            }
            assert_eq!(d.app().sum(1), 5);
        }
        let d = DurableApp::open(CounterApp::new(), &dir, 2).unwrap();
        assert_eq!(d.app().sum(1), 5);
        assert_eq!(d.batches_applied(), 5);
    }

    #[test]
    fn group_commit_engine_syncs_once_per_batch() {
        let dir = tmp("stats");
        let mut d = DurableApp::open(CounterApp::new(), &dir, 100).unwrap();
        for i in 0..4u64 {
            d.apply_batch(&[req(1, i, 1)]).unwrap();
        }
        let stats = d.engine_stats();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.syncs, 4, "sequential batches: one commit point each");
        assert_eq!(d.policy(), SyncPolicy::Sync);
    }

    #[test]
    fn none_policy_is_volatile_across_restarts() {
        let dir = tmp("volatile");
        {
            let mut d =
                DurableApp::open_with_policy(CounterApp::new(), &dir, 100, SyncPolicy::None)
                    .unwrap();
            d.apply_batch(&[req(1, 0, 9)]).unwrap();
            assert_eq!(d.app().sum(1), 9);
        }
        // ∞-persistence: a restart starts from nothing.
        let d =
            DurableApp::open_with_policy(CounterApp::new(), &dir, 100, SyncPolicy::None).unwrap();
        assert_eq!(d.app().sum(1), 0, "no state may survive the volatile rung");
        assert_eq!(d.batches_applied(), 0);
    }

    /// State transfer between two DurableApps: a fresh replica installs a
    /// peer's reply (snapshot + suffix) and converges, durably.
    #[test]
    fn remote_state_install_converges_and_survives_restart() {
        let src_dir = tmp("st-src");
        let dst_dir = tmp("st-dst");
        let mut src = DurableApp::open(CounterApp::new(), &src_dir, 3).unwrap();
        for i in 0..8u64 {
            src.apply_batch(&[req(1, i, 2)]).unwrap();
        }
        assert_eq!(src.app().sum(1), 16);
        // Checkpoint at period 3 → snapshot covers 6, log holds 7..8.
        let reply = src.state_reply(1).unwrap();
        assert_eq!(reply.covered, 6);
        assert!(reply.snapshot.is_some());
        assert_eq!(reply.first_batch, 7);
        assert_eq!(reply.batches.len(), 2);
        {
            let mut dst = DurableApp::open(CounterApp::new(), &dst_dir, 100).unwrap();
            let applied = dst
                .install_remote(
                    reply.covered,
                    reply.snapshot,
                    reply.first_batch,
                    &reply.batches,
                )
                .unwrap();
            assert_eq!(applied.len(), 2, "only the post-snapshot suffix applies");
            assert_eq!(dst.batches_applied(), 8);
            assert_eq!(dst.app().sum(1), 16);
        }
        // The transferred state is durable: a reopen recovers it locally.
        let dst = DurableApp::open(CounterApp::new(), &dst_dir, 100).unwrap();
        assert_eq!(dst.batches_applied(), 8);
        assert_eq!(dst.app().sum(1), 16);
    }

    /// A replica that already holds a prefix receives only the missing tail.
    #[test]
    fn remote_state_install_skips_known_prefix_and_rejects_gaps() {
        let src_dir = tmp("st2-src");
        let dst_dir = tmp("st2-dst");
        let mut src = DurableApp::open(CounterApp::new(), &src_dir, 100).unwrap();
        let mut dst = DurableApp::open(CounterApp::new(), &dst_dir, 100).unwrap();
        for i in 0..5u64 {
            src.apply_batch(&[req(1, i, 1)]).unwrap();
            if i < 3 {
                dst.apply_batch(&[req(1, i, 1)]).unwrap();
            }
        }
        let reply = src.state_reply(4).unwrap();
        assert_eq!((reply.covered, reply.first_batch), (0, 4));
        assert!(reply.snapshot.is_none());
        let applied = dst
            .install_remote(
                reply.covered,
                reply.snapshot.clone(),
                reply.first_batch,
                &reply.batches,
            )
            .unwrap();
        assert_eq!(applied.len(), 2);
        assert_eq!(dst.app().sum(1), 5);
        // A reply that skips ahead is rejected, nothing applied.
        let err = dst.install_remote(0, None, 9, &reply.batches).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(dst.batches_applied(), 5);
    }

    #[test]
    fn async_policy_skips_syncs() {
        let dir = tmp("async");
        let mut d =
            DurableApp::open_with_policy(CounterApp::new(), &dir, 100, SyncPolicy::Async).unwrap();
        for i in 0..4u64 {
            d.apply_batch(&[req(1, i, 1)]).unwrap();
        }
        let stats = d.engine_stats();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.syncs, 0, "λ-persistence never fsyncs on the ack path");
    }
}
