//! A real-time, in-process deployment of the SMR stack: one OS thread per
//! replica, crossbeam channels as the (authenticated) point-to-point links,
//! wall-clock progress timeouts, and real durable storage through
//! [`DurableApp`].
//!
//! The protocol cores are the same sans-IO state machines the simulator
//! drives; this module shows they run unchanged against real time and real
//! disks, and gives downstream users an embeddable local cluster (tests,
//! demos, single-machine deployments).

use crate::app::Application;
use crate::durability::DurableApp;
use crate::ordering::{CoreOutput, OrderingConfig, OrderingCore, SmrMsg};
use crate::types::{Reply, Request};
use crossbeam::channel::{self, Receiver, Sender};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};
use std::collections::HashMap;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages on the internal links.
enum Wire {
    Peer {
        from: ReplicaId,
        msg: SmrMsg,
    },
    Client(Request),
    Shutdown,
}

/// Configuration of a local threaded cluster.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of replicas (3f+1 for f faults).
    pub replicas: usize,
    /// Batch bound.
    pub max_batch: usize,
    /// Progress timeout before a leader change.
    pub progress_timeout: Duration,
    /// Storage root (one subdirectory per replica); `None` = temp dir.
    pub storage_dir: Option<PathBuf>,
    /// Checkpoint period in batches.
    pub checkpoint_period: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            replicas: 4,
            max_batch: 64,
            progress_timeout: Duration::from_millis(500),
            storage_dir: None,
            checkpoint_period: 128,
        }
    }
}

/// Handle to a running local cluster.
pub struct LocalCluster {
    inboxes: Vec<Sender<Wire>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    f: usize,
    next_seq: u64,
    client_id: u64,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("replicas", &self.inboxes.len())
            .finish_non_exhaustive()
    }
}

impl LocalCluster {
    /// Boots `config.replicas` replica threads running `make_app()` behind
    /// durable logs.
    ///
    /// # Errors
    ///
    /// Propagates storage initialization failures.
    pub fn start<A: Application>(
        config: RuntimeConfig,
        make_app: impl Fn() -> A,
    ) -> std::io::Result<LocalCluster> {
        let n = config.replicas;
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 200; 32]))
            .collect();
        let view = View { id: 0, members: secrets.iter().map(|s| s.public_key()).collect() };
        let root = config.storage_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("smartchain-runtime-{}", std::process::id()))
        });
        let (reply_tx, reply_rx) = channel::unbounded::<Reply>();
        let mut inboxes = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded::<Wire>();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (me, rx) in receivers.into_iter().enumerate() {
            let mut core = OrderingCore::new(
                me,
                view.clone(),
                secrets[me].clone(),
                OrderingConfig { max_batch: config.max_batch },
                0,
            );
            let mut durable =
                DurableApp::open(make_app(), root.join(format!("replica-{me}")), config.checkpoint_period)?;
            let peers = inboxes.clone();
            let replies = reply_tx.clone();
            let timeout = config.progress_timeout;
            handles.push(std::thread::spawn(move || {
                replica_loop(me, &mut core, &mut durable, rx, &peers, &replies, timeout);
            }));
        }
        Ok(LocalCluster {
            inboxes,
            replies: reply_rx,
            handles,
            f: (n - 1) / 3,
            next_seq: 0,
            client_id: 0xC11E27,
        })
    }

    /// Crashes a replica (closes its inbox; its thread exits). For testing
    /// fault tolerance of the live cluster.
    pub fn kill_replica(&mut self, replica: ReplicaId) {
        let (dead_tx, _) = channel::unbounded();
        if let Some(slot) = self.inboxes.get_mut(replica) {
            let old = std::mem::replace(slot, dead_tx);
            let _ = old.send(Wire::Shutdown);
        }
    }

    /// Submits an operation and waits for `f+1` matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum of matching replies arrives in
    /// `deadline`.
    pub fn execute(
        &mut self,
        payload: Vec<u8>,
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        self.next_seq += 1;
        let request = Request {
            client: self.client_id,
            seq: self.next_seq,
            payload,
            signature: None,
        };
        for inbox in &self.inboxes {
            let _ = inbox.send(Wire::Client(request.clone()));
        }
        let needed = self.f + 1;
        let mut tally: HashMap<Vec<u8>, std::collections::HashSet<ReplicaId>> = HashMap::new();
        let deadline_at = std::time::Instant::now() + deadline;
        loop {
            let remaining = deadline_at
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::TimedOut, "no reply quorum")
                })?;
            match self.replies.recv_timeout(remaining) {
                Ok(reply) if reply.seq == self.next_seq => {
                    let set = tally.entry(reply.result.clone()).or_default();
                    set.insert(reply.replica);
                    if set.len() >= needed {
                        return Ok(reply.result);
                    }
                }
                Ok(_) => {} // stale reply from an earlier operation
                Err(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no reply quorum",
                    ))
                }
            }
        }
    }

    /// Shuts the cluster down and joins the replica threads.
    pub fn shutdown(mut self) {
        for inbox in &self.inboxes {
            let _ = inbox.send(Wire::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn replica_loop<A: Application>(
    me: ReplicaId,
    core: &mut OrderingCore,
    durable: &mut DurableApp<A>,
    rx: Receiver<Wire>,
    peers: &[Sender<Wire>],
    replies: &Sender<Reply>,
    timeout: Duration,
) {
    let mut last_progress = std::time::Instant::now();
    loop {
        let outputs = match rx.recv_timeout(timeout) {
            Ok(Wire::Peer { from, msg }) => core.on_message(from, msg),
            Ok(Wire::Client(request)) => core.submit(request),
            Ok(Wire::Shutdown) => return,
            Err(channel::RecvTimeoutError::Timeout) => {
                if core.pending_len() > 0 && last_progress.elapsed() >= timeout {
                    if std::env::var("SC_RT_DEBUG").is_ok() {
                        eprintln!(
                            "[rt] replica {me} timeout: regency={} leader={} pending={} ld={}",
                            core.regency(), core.leader(), core.pending_len(), core.last_delivered()
                        );
                    }
                    core.on_progress_timeout()
                } else {
                    Vec::new()
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => return,
        };
        // Outputs must hit the wire in emission order (a SYNC must precede
        // the re-proposal it enables).
        for out in outputs {
            match out {
                CoreOutput::Broadcast(msg) => {
                    for (r, peer) in peers.iter().enumerate() {
                        if r != me {
                            let _ = peer.send(Wire::Peer { from: me, msg: msg.clone() });
                        }
                    }
                }
                CoreOutput::Send(to, msg) => {
                    if let Some(peer) = peers.get(to) {
                        let _ = peer.send(Wire::Peer { from: me, msg });
                    }
                }
                CoreOutput::Deliver(batch) => {
                    last_progress = std::time::Instant::now();
                    if let Ok(results) = durable.apply_batch(&batch.requests) {
                        for (request, result) in batch.requests.iter().zip(results) {
                            let _ = replies.send(Reply {
                                client: request.client,
                                seq: request.seq,
                                result,
                                replica: me,
                            });
                        }
                    }
                }
                CoreOutput::NeedStateTransfer { .. } => {
                    // Out of scope for the local runtime: replicas share fate
                    // in one process and never lag beyond the window.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-rt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn executes_operations_against_real_disk() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("exec")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        // Counter adds payload bytes; replies carry the running sum.
        let r1 = cluster.execute(vec![5], Duration::from_secs(10)).expect("op 1");
        assert_eq!(u64::from_le_bytes(r1[..8].try_into().unwrap()), 5);
        let r2 = cluster.execute(vec![7], Duration::from_secs(10)).expect("op 2");
        assert_eq!(u64::from_le_bytes(r2[..8].try_into().unwrap()), 12);
        cluster.shutdown();
    }

    #[test]
    fn state_survives_restart_from_disk() {
        let dir = fresh_dir("restart");
        let config = RuntimeConfig {
            storage_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config.clone(), CounterApp::new).expect("boot");
        cluster.execute(vec![9], Duration::from_secs(10)).expect("op");
        cluster.shutdown();
        // Reboot on the same directories: the durable logs replay.
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("reboot");
        let r = cluster.execute(vec![1], Duration::from_secs(10)).expect("op after reboot");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 10, "9 + 1 across restart");
        cluster.shutdown();
    }

    #[test]
    fn survives_one_replica_crash() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("crash")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        cluster.execute(vec![1], Duration::from_secs(10)).expect("warm-up");
        cluster.kill_replica(3);
        let r = cluster.execute(vec![2], Duration::from_secs(10)).expect("op with f crashed");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 3);
        cluster.shutdown();
    }

    #[test]
    fn survives_leader_crash() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("leadercrash")),
            progress_timeout: Duration::from_millis(200),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        cluster.execute(vec![1], Duration::from_secs(10)).expect("warm-up");
        cluster.kill_replica(0); // the initial leader
        let r = cluster.execute(vec![4], Duration::from_secs(20)).expect("op after leader death");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 5);
        cluster.shutdown();
    }
}
