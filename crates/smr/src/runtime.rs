//! A real-time deployment of the SMR stack: one replica loop per OS
//! thread/process, wall-clock progress timeouts, real durable storage
//! through [`DurableApp`] — and the messaging substrate abstracted behind
//! [`Transport`], so the same loop runs over in-process channels
//! ([`LocalCluster`]) or authenticated, reconnecting TCP links
//! ([`TcpCluster`] in-process over loopback, or one process per replica via
//! [`serve_replica`]).
//!
//! The protocol cores are the same sans-IO state machines the simulator
//! drives; this module shows they run unchanged against real time, real
//! disks and real sockets. On lossy transports the loop also runs the
//! runtime's state transfer: a replica that restarted (or fell behind a
//! torn link) fetches the missed batch suffix from a peer and rejoins.

use crate::app::Application;
use crate::durability::{ckpt_sign_payload, CheckpointCert, DurableApp};
use crate::ordering::{CoreOutput, OrderingConfig, OrderingCore, SmrMsg};
use crate::transport::{
    channel_mesh, ClusterConfig, Injector, NetEvent, RecvError, StatsInner, TcpClient,
    TcpTransport, Transport, TransportStats,
};
use crate::types::{Reply, Request};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey, Signature};
use smartchain_crypto::pool::{VerifyItem, VerifyPool};
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a local threaded cluster.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of replicas (3f+1 for f faults).
    pub replicas: usize,
    /// Batch bound.
    pub max_batch: usize,
    /// Progress timeout before a leader change.
    pub progress_timeout: Duration,
    /// Storage root (one subdirectory per replica); `None` = temp dir.
    pub storage_dir: Option<PathBuf>,
    /// Checkpoint period in batches.
    pub checkpoint_period: u64,
    /// Worker threads in each replica's signature-verification pool (the
    /// pipeline's verify stage; client requests are checked in batches off
    /// the ordering thread).
    pub verify_workers: usize,
    /// Reject unsigned requests in the verify stage. `false` (the embedded
    /// default) keeps signature-free deployments working; anything serving
    /// an open TCP surface should set it — see [`verify_and_submit`]'s
    /// forgery note. `cluster.toml` deployments default to `true`.
    pub require_signed: bool,
    /// Execution lanes in each replica's EXECUTE stage (1 = serial, the
    /// default). Above one lane, [`DurableApp`] plans every delivered batch
    /// over the application's static lane hints and fans non-conflicting
    /// transactions out on a per-replica worker pool — results and state
    /// stay bit-identical to the serial stage.
    pub execute_lanes: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            replicas: 4,
            max_batch: 64,
            progress_timeout: Duration::from_millis(500),
            storage_dir: None,
            checkpoint_period: 128,
            verify_workers: 2,
            require_signed: false,
            execute_lanes: 1,
        }
    }
}

/// Handle to a running local (channel-transport) cluster.
pub struct LocalCluster {
    inboxes: Vec<Sender<NetEvent>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    f: usize,
    next_seq: u64,
    client_id: u64,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("replicas", &self.inboxes.len())
            .finish_non_exhaustive()
    }
}

impl LocalCluster {
    /// Boots `config.replicas` replica threads running `make_app()` behind
    /// durable logs, wired through the in-process channel transport.
    ///
    /// # Errors
    ///
    /// Propagates storage initialization failures.
    pub fn start<A: Application>(
        config: RuntimeConfig,
        make_app: impl Fn() -> A,
    ) -> std::io::Result<LocalCluster> {
        let n = config.replicas;
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 200; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        let root = config.storage_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("smartchain-runtime-{}", std::process::id()))
        });
        let (transports, mesh) = channel_mesh(n);
        let mut handles = Vec::with_capacity(n);
        for (me, mut transport) in transports.into_iter().enumerate() {
            let mut core = OrderingCore::new(
                me,
                view.clone(),
                secrets[me].clone(),
                OrderingConfig {
                    max_batch: config.max_batch,
                    ..OrderingConfig::default()
                },
                0,
            );
            let mut durable = DurableApp::open(
                make_app(),
                root.join(format!("replica-{me}")),
                config.checkpoint_period,
            )?;
            // A restart must not re-admit requests the pre-crash
            // incarnation already delivered: seed the fresh core's
            // duplicate filter from the durable frontier.
            for (client, seq) in durable.delivered_frontier() {
                core.note_delivered(client, seq);
            }
            durable.set_execute_lanes(config.execute_lanes.max(1));
            let timeout = config.progress_timeout;
            let verify_workers = config.verify_workers.max(1);
            let require_signed = config.require_signed;
            handles.push(std::thread::spawn(move || {
                let pool = std::sync::Arc::new(VerifyPool::new(verify_workers));
                core.set_verify_pool(pool.clone());
                replica_loop(
                    &mut core,
                    &mut durable,
                    &mut transport,
                    timeout,
                    &pool,
                    require_signed,
                );
            }));
        }
        Ok(LocalCluster {
            inboxes: mesh.inboxes,
            replies: mesh.replies,
            handles,
            f: (n - 1) / 3,
            next_seq: 0,
            client_id: 0xC11E27,
        })
    }

    /// Crashes a replica (closes its inbox; its thread exits). For testing
    /// fault tolerance of the live cluster.
    pub fn kill_replica(&mut self, replica: ReplicaId) {
        let (dead_tx, _) = mpsc::channel();
        if let Some(slot) = self.inboxes.get_mut(replica) {
            let old = std::mem::replace(slot, dead_tx);
            let _ = old.send(NetEvent::Shutdown);
        }
    }

    /// Submits an operation and waits for `f+1` matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum of matching replies arrives in
    /// `deadline`.
    pub fn execute(&mut self, payload: Vec<u8>, deadline: Duration) -> std::io::Result<Vec<u8>> {
        self.next_seq += 1;
        let request = Request {
            client: self.client_id,
            seq: self.next_seq,
            payload,
            signature: None,
        };
        self.execute_request(request, deadline)
    }

    /// Submits a pre-built request (e.g. a client-signed one, exercising the
    /// replicas' batched verify stage) and waits for `f+1` matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum of matching replies arrives in
    /// `deadline` — which is also what a rejected (forged) request looks
    /// like, since replicas drop it before ordering.
    pub fn execute_request(
        &mut self,
        request: Request,
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        self.next_seq = self.next_seq.max(request.seq);
        for inbox in &self.inboxes {
            let _ = inbox.send(NetEvent::Client(request.clone()));
        }
        let needed = self.f + 1;
        let mut tally: HashMap<Vec<u8>, std::collections::HashSet<ReplicaId>> = HashMap::new();
        let deadline_at = std::time::Instant::now() + deadline;
        loop {
            let remaining = deadline_at
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::TimedOut, "no reply quorum")
                })?;
            match self.replies.recv_timeout(remaining) {
                Ok(reply) if reply.seq == request.seq && reply.client == request.client => {
                    let set = tally.entry(reply.result.clone()).or_default();
                    set.insert(reply.replica);
                    if set.len() >= needed {
                        return Ok(reply.result);
                    }
                }
                Ok(_) => {} // stale reply from an earlier operation
                Err(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no reply quorum",
                    ))
                }
            }
        }
    }

    /// Shuts the cluster down and joins the replica threads.
    pub fn shutdown(mut self) {
        for inbox in &self.inboxes {
            let _ = inbox.send(NetEvent::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// TCP deployment
// ---------------------------------------------------------------------------

struct TcpReplicaHandle {
    injector: Injector,
    stats: std::sync::Arc<StatsInner>,
    handle: JoinHandle<()>,
}

/// A 3f+1 cluster over real loopback sockets, one replica thread each —
/// the in-process stand-in for the multi-process deployment (which runs the
/// identical [`serve_replica`] loop, one process per replica).
pub struct TcpCluster<A: Application> {
    cluster: ClusterConfig,
    backend: Backend,
    runtime: RuntimeConfig,
    root: PathBuf,
    make_app: Box<dyn Fn() -> A + Send + Sync>,
    replicas: Vec<Option<TcpReplicaHandle>>,
    client: TcpClient,
    next_seq: u64,
}

impl<A: Application> std::fmt::Debug for TcpCluster<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCluster")
            .field("replicas", &self.cluster.n())
            .field("addrs", &self.cluster.replicas)
            .finish_non_exhaustive()
    }
}

impl<A: Application> TcpCluster<A> {
    /// Boots `config.replicas` replica threads over loopback TCP on
    /// OS-assigned ports. `backend` selects the consensus-key scheme —
    /// [`Backend::Sim`] is fine in-process; multi-process deployments need
    /// [`Backend::Ed25519`].
    ///
    /// # Errors
    ///
    /// Propagates socket and storage initialization failures.
    pub fn start(
        config: RuntimeConfig,
        backend: Backend,
        make_app: impl Fn() -> A + Send + Sync + 'static,
    ) -> std::io::Result<TcpCluster<A>> {
        let n = config.replicas;
        // Bind first so every replica learns real ports, then hand each
        // pre-bound listener to its transport.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            addrs.push(listener.local_addr()?.to_string());
            listeners.push(listener);
        }
        let mut secret = [0u8; 32];
        secret[..8].copy_from_slice(&(std::process::id() as u64).to_le_bytes());
        let mut cluster = ClusterConfig::new(addrs.clone(), secret);
        cluster.max_batch = config.max_batch;
        cluster.checkpoint_period = config.checkpoint_period;
        cluster.progress_timeout_ms = config.progress_timeout.as_millis() as u64;
        cluster.require_signed = config.require_signed;
        let root = config.storage_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("smartchain-tcp-{}", std::process::id()))
        });
        let client = TcpClient::new(0xC11E28, addrs);
        let mut this = TcpCluster {
            cluster,
            backend,
            runtime: config,
            root,
            make_app: Box::new(make_app),
            replicas: (0..n).map(|_| None).collect(),
            client,
            next_seq: 0,
        };
        for (me, listener) in listeners.into_iter().enumerate() {
            this.spawn_replica(me, Some(listener))?;
        }
        Ok(this)
    }

    /// The deployment descriptor (addresses, secret) this cluster runs on.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster
    }

    fn spawn_replica(
        &mut self,
        me: ReplicaId,
        listener: Option<TcpListener>,
    ) -> std::io::Result<()> {
        let listener = match listener {
            Some(l) => l,
            // A restart rebinds the replica's old port; accepted sockets of
            // the previous incarnation may hold it briefly (TIME_WAIT), so
            // retry within a bounded window.
            None => {
                let addr = &self.cluster.replicas[me];
                let deadline = std::time::Instant::now() + Duration::from_secs(10);
                loop {
                    match TcpListener::bind(addr) {
                        Ok(l) => break l,
                        Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                        Err(_) => std::thread::sleep(Duration::from_millis(50)),
                    }
                }
            }
        };
        let mut transport = TcpTransport::from_listener(self.cluster.tcp_config(me), listener)?;
        let injector = transport.injector();
        let stats = transport.stats_handle();
        let mut durable = DurableApp::open(
            (self.make_app)(),
            self.root.join(format!("replica-{me}")),
            self.runtime.checkpoint_period,
        )?;
        let mut core = OrderingCore::new(
            me,
            self.cluster.view(self.backend),
            self.cluster.replica_secret(me, self.backend),
            OrderingConfig {
                max_batch: self.runtime.max_batch,
                ..OrderingConfig::default()
            },
            durable.batches_applied(),
        );
        // Seed the fresh core's duplicate filter from the durable frontier:
        // a restarted replica must not re-admit (or, once it leads,
        // re-propose) requests its pre-crash incarnation delivered.
        for (client, seq) in durable.delivered_frontier() {
            core.note_delivered(client, seq);
        }
        durable.set_execute_lanes(self.runtime.execute_lanes.max(1));
        let timeout = self.runtime.progress_timeout;
        let verify_workers = self.runtime.verify_workers.max(1);
        let require_signed = self.runtime.require_signed;
        let handle = std::thread::Builder::new()
            .name(format!("sc-replica-{me}"))
            .spawn(move || {
                let pool = std::sync::Arc::new(VerifyPool::new(verify_workers));
                core.set_verify_pool(pool.clone());
                replica_loop(
                    &mut core,
                    &mut durable,
                    &mut transport,
                    timeout,
                    &pool,
                    require_signed,
                );
            })
            .expect("spawn replica");
        self.replicas[me] = Some(TcpReplicaHandle {
            injector,
            stats,
            handle,
        });
        Ok(())
    }

    /// A snapshot of one live replica's transport counters (frames, bytes,
    /// writev coalescing, drops, admission rejections).
    pub fn transport_stats(&self, replica: ReplicaId) -> Option<TransportStats> {
        self.replicas
            .get(replica)?
            .as_ref()
            .map(|h| h.stats.snapshot())
    }

    /// Kills a replica: its loop exits, its transport tears down every
    /// connection (peers see torn links and redial into nothing until a
    /// restart).
    pub fn kill_replica(&mut self, replica: ReplicaId) {
        if let Some(h) = self.replicas.get_mut(replica).and_then(Option::take) {
            h.injector.send(NetEvent::Shutdown);
            let _ = h.handle.join();
        }
    }

    /// Restarts a previously killed replica on its old address and storage
    /// directory: it recovers its durable prefix locally and state-transfers
    /// the missed suffix from its peers.
    ///
    /// # Errors
    ///
    /// Propagates socket and storage failures.
    pub fn restart_replica(&mut self, replica: ReplicaId) -> std::io::Result<()> {
        if self.replicas[replica].is_some() {
            return Ok(()); // still running
        }
        self.spawn_replica(replica, None)
    }

    /// Submits an operation and waits for `f+1` matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum forms within `deadline`.
    pub fn execute(&mut self, payload: Vec<u8>, deadline: Duration) -> std::io::Result<Vec<u8>> {
        self.next_seq += 1;
        let request = Request {
            client: 0xC11E28,
            seq: self.next_seq,
            payload,
            signature: None,
        };
        self.execute_request(request, deadline)
    }

    /// Submits a pre-built (e.g. signed) request and waits for `f+1`
    /// matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum forms within `deadline`.
    pub fn execute_request(
        &mut self,
        request: Request,
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        self.next_seq = self.next_seq.max(request.seq);
        let quorum = self.cluster.f() + 1;
        self.client.execute_request(request, quorum, deadline)
    }

    /// Shuts every replica down and joins all threads.
    pub fn shutdown(mut self) {
        for slot in &mut self.replicas {
            if let Some(h) = slot.take() {
                h.injector.send(NetEvent::Shutdown);
                let _ = h.handle.join();
            }
        }
        self.client.shutdown();
    }
}

/// Runs one replica of a multi-process deployment on the current thread:
/// binds `cluster.replicas[me]`, recovers durable state from `storage_dir`,
/// and loops until the process is killed. This is what the `replica` example
/// binary calls; pair it with [`TcpClient`] (the `client` example).
///
/// # Errors
///
/// Propagates socket and storage initialization failures.
pub fn serve_replica<A: Application>(
    cluster: &ClusterConfig,
    me: ReplicaId,
    backend: Backend,
    storage_dir: PathBuf,
    app: A,
) -> std::io::Result<()> {
    let mut transport = TcpTransport::bind(cluster.tcp_config(me))?;
    let mut durable = DurableApp::open(app, storage_dir, cluster.checkpoint_period)?;
    let mut core = OrderingCore::new(
        me,
        cluster.view(backend),
        cluster.replica_secret(me, backend),
        OrderingConfig {
            max_batch: cluster.max_batch,
            ..OrderingConfig::default()
        },
        durable.batches_applied(),
    );
    // Seed the duplicate filter from the recovered durable frontier (see
    // TcpCluster::spawn_replica).
    for (client, seq) in durable.delivered_frontier() {
        core.note_delivered(client, seq);
    }
    let pool = std::sync::Arc::new(VerifyPool::new(2));
    core.set_verify_pool(pool.clone());
    let timeout = Duration::from_millis(cluster.progress_timeout_ms.max(1));
    replica_loop(
        &mut core,
        &mut durable,
        &mut transport,
        timeout,
        &pool,
        cluster.require_signed,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// The replica loop (transport-generic)
// ---------------------------------------------------------------------------

/// Batched verify stage (wall-clock backend): checks every signed request in
/// `batch` on the pool lanes at once and feeds the survivors to the order
/// stage. Unsigned requests pass through only when the deployment does not
/// `require_signed` — on an open TCP surface an unsigned request would let
/// any network peer forge another client's `(client, seq)` and poison its
/// duplicate filter, so public deployments must require signatures.
/// Payload prefix marking a light-client read-proof request. Such requests
/// are served locally from the replica's latest *certified* checkpoint —
/// they are never ordered, never executed, and need no signature: the reply
/// (an encoded [`crate::durability::ReadProof`]) verifies against the
/// view's public keys, so the trust lives in the quorum certificate, not in
/// which replica answered.
pub const READ_PROOF_MAGIC: [u8; 4] = [0xE3, b'r', b'd', 0x01];

/// Builds the request payload asking for chunk `chunk` of the certified
/// state (see [`READ_PROOF_MAGIC`]).
pub fn read_proof_request_payload(chunk: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&READ_PROOF_MAGIC);
    out.extend_from_slice(&chunk.to_le_bytes());
    out
}

/// Parses a read-proof request payload back into its chunk index.
pub fn parse_read_proof_request(payload: &[u8]) -> Option<u64> {
    let rest = payload.strip_prefix(READ_PROOF_MAGIC.as_slice())?;
    Some(u64::from_le_bytes(rest.try_into().ok()?))
}

/// Collects gossiped checkpoint-certificate shares ([`SmrMsg::CkptShare`])
/// until a quorum matches this replica's own newest checkpoint basis, then
/// assembles and stores the [`CheckpointCert`]. Shares for other bases are
/// kept until their covered point is superseded — replicas checkpoint at
/// the same batch numbers but not at the same wall-clock instant.
struct CertAssembly {
    /// Per-covered-point shares: `(replica, state_root, tip, signature)`.
    shares: HashMap<u64, Vec<CkptShareEntry>>,
}

type CkptShareEntry = (ReplicaId, [u8; 32], [u8; 32], Signature);

impl CertAssembly {
    fn new() -> Self {
        CertAssembly {
            shares: HashMap::new(),
        }
    }

    fn note(
        &mut self,
        replica: ReplicaId,
        covered: u64,
        state_root: [u8; 32],
        tip: [u8; 32],
        signature: Signature,
    ) {
        let entry = self.shares.entry(covered).or_default();
        if entry.iter().any(|(r, ..)| *r == replica) {
            return; // first share per replica wins
        }
        entry.push((replica, state_root, tip, signature));
    }

    fn try_assemble<A: Application>(&mut self, core: &OrderingCore, durable: &mut DurableApp<A>) {
        let Some((covered, state_root, tip)) = durable.latest_checkpoint_basis() else {
            return;
        };
        if durable.checkpoint_cert().is_some() {
            self.prune(covered);
            return;
        }
        let Some(entries) = self.shares.get(&covered) else {
            return;
        };
        // Only shares agreeing with OUR basis count, and each signature is
        // checked against the signer's view key — a Byzantine replica can
        // neither vote twice nor smuggle a foreign root into the quorum.
        let view = core.view();
        let payload = ckpt_sign_payload(covered, &state_root, &tip);
        let mut signatures: Vec<(ReplicaId, Signature)> = Vec::new();
        for (replica, root, t, sig) in entries {
            if *root != state_root || *t != tip {
                continue;
            }
            let Some(key) = view.members.get(*replica) else {
                continue;
            };
            if key.verify(&payload, sig) {
                signatures.push((*replica, *sig));
            }
        }
        if signatures.len() >= view.quorum() {
            signatures.sort_unstable_by_key(|(r, _)| *r);
            let _ = durable.store_checkpoint_cert(CheckpointCert {
                covered,
                state_root,
                tip,
                signatures,
            });
            self.prune(covered);
        }
    }

    fn prune(&mut self, covered: u64) {
        self.shares.retain(|&c, _| c > covered);
    }
}

fn verify_and_submit(
    core: &mut OrderingCore,
    pool: &VerifyPool,
    batch: Vec<Request>,
    require_signed: bool,
) -> Vec<CoreOutput> {
    let mut checks = Vec::new();
    let mut passed = Vec::new();
    for (i, request) in batch.iter().enumerate() {
        match &request.signature {
            Some((key, sig)) => checks.push(VerifyItem {
                tag: i,
                public: *key,
                msg: Request::sign_payload(request.client, request.seq, &request.payload),
                sig: *sig,
            }),
            None if !require_signed => passed.push(i),
            None => {} // unsigned request on a signature-requiring deployment
        }
    }
    passed.extend(
        pool.verify_tagged(checks)
            .into_iter()
            .filter_map(|(i, ok)| ok.then_some(i)),
    );
    passed.sort_unstable(); // keep arrival order among survivors
    let mut outputs = Vec::new();
    for i in passed {
        outputs.extend(core.submit(batch[i].clone()));
    }
    outputs
}

/// Runtime state-transfer bookkeeping: which peer we asked, and when.
struct SyncAttempt {
    asked_at: std::time::Instant,
    attempt: usize,
}

/// The shipper for retry `attempt`: highest-id peers first (the designated
/// non-leader shipper rule), rotating on unanswered attempts so one crashed
/// peer cannot wedge recovery.
fn shipper_for(me: ReplicaId, n: usize, attempt: usize) -> ReplicaId {
    let order: Vec<ReplicaId> = (0..n).rev().filter(|&r| r != me).collect();
    order[attempt % order.len()]
}

fn send_state_request<A: Application, T: Transport>(
    durable: &DurableApp<A>,
    transport: &mut T,
    attempt: usize,
) -> SyncAttempt {
    let me = transport.me();
    let shipper = shipper_for(me, transport.n(), attempt);
    transport.send(
        shipper,
        SmrMsg::StateReq {
            from_batch: durable.batches_applied() + 1,
        },
    );
    SyncAttempt {
        asked_at: std::time::Instant::now(),
        attempt,
    }
}

/// Installs a peer's state reply into the durable app and the ordering
/// core's duplicate filter. Returns true when the local state advanced.
///
/// The digest check runs first: every shipped record must carry a decision
/// proof for its own batch number, content-bound (`sha256(value)` is the
/// quorum-signed `value_hash`) and valid under the current view — and
/// `install_remote` additionally requires the suffix to chain-hash onto this
/// replica's tip. An HMAC-authenticated but Byzantine shipper can therefore
/// no longer feed a recovering replica forged *batches* — and no longer a
/// forged *snapshot* either: a snapshot running ahead of local state
/// installs only when the shipped bytes re-chunk to the state root of a
/// quorum-signed [`CheckpointCert`] (see
/// [`crate::durability::DurableApp::install_remote`]).
#[allow(clippy::too_many_arguments)]
fn install_state_reply<A: Application>(
    core: &mut OrderingCore,
    durable: &mut DurableApp<A>,
    covered: u64,
    snapshot: Option<Vec<u8>>,
    cert: Option<CheckpointCert>,
    first_batch: u64,
    batches: &[Vec<u8>],
    frontier: &[(u64, u64)],
) -> bool {
    if !crate::durability::verify_shipped_suffix(core.view(), first_batch, batches) {
        return false; // forged/damaged suffix: rotate to another shipper
    }
    let before = durable.batches_applied();
    let installed = durable.install_remote(
        core.view(),
        covered,
        snapshot,
        cert.as_ref(),
        first_batch,
        batches,
    );
    let applied = match installed {
        Ok(applied) => applied,
        Err(e) => {
            if std::env::var("SC_RT_DEBUG").is_ok() {
                eprintln!("[rt] state reply rejected: {e}");
            }
            return false; // uncertified/tampered snapshot or broken suffix
        }
    };
    // The dedup frontier covers the summarized prefix; the applied requests
    // cover the replayed suffix. Both must reach the core or client
    // retransmissions would re-order history.
    for &(client, seq) in frontier {
        core.note_delivered(client, seq);
    }
    for request in &applied {
        core.note_delivered(request.client, request.seq);
    }
    core.fast_forward(durable.batches_applied());
    durable.batches_applied() > before
}

fn replica_loop<A: Application, T: Transport>(
    core: &mut OrderingCore,
    durable: &mut DurableApp<A>,
    transport: &mut T,
    timeout: Duration,
    pool: &VerifyPool,
    require_signed: bool,
) {
    let me = transport.me();
    let mut last_progress = std::time::Instant::now();
    // Non-client events encountered while draining a verify batch wait here
    // and are processed before blocking on the transport again.
    let mut backlog: std::collections::VecDeque<NetEvent> = std::collections::VecDeque::new();
    // In-flight runtime state transfer, if any.
    let mut syncing: Option<SyncAttempt> = None;
    // Last reply executed per client. A client retransmits when every copy
    // of its reply was lost (torn connections, a throttled slow client's
    // dropped frames); the retransmission lands inside the dedup frontier,
    // so it must be answered from here — silence would wedge the client
    // forever. Seeded from the durable store (snapshot meta + log replay),
    // so a freshly restarted replica still answers retransmissions of
    // pre-crash deliveries.
    let mut reply_cache: std::collections::HashMap<u64, Reply> = durable
        .cached_replies()
        .into_iter()
        .map(|(client, seq, result)| {
            (
                client,
                Reply {
                    client,
                    seq,
                    result,
                    replica: me,
                },
            )
        })
        .collect();
    // Checkpoint-certificate shares gossiped by peers (and ourselves).
    let mut certs = CertAssembly::new();
    loop {
        let event = match backlog.pop_front() {
            Some(ev) => Ok(ev),
            None => transport.recv_timeout(timeout),
        };
        let outputs = match event {
            Ok(NetEvent::Peer {
                from,
                msg: SmrMsg::StateReq { from_batch },
            }) => {
                // Serve from our durable log + snapshot; the requester
                // validates contiguity on its side.
                if let Ok(reply) = durable.state_reply(from_batch) {
                    transport.send(
                        from,
                        SmrMsg::StateRep {
                            covered: reply.covered,
                            snapshot: reply.snapshot,
                            first_batch: reply.first_batch,
                            batches: reply.batches,
                            frontier: core.delivered_frontier(),
                            regency: core.regency(),
                            cert: reply.cert,
                        },
                    );
                }
                Vec::new()
            }
            Ok(NetEvent::Peer {
                msg:
                    SmrMsg::StateRep {
                        covered,
                        snapshot,
                        first_batch,
                        batches,
                        frontier,
                        regency,
                        cert,
                    },
                ..
            }) => {
                if syncing.is_some() {
                    let advanced = install_state_reply(
                        core,
                        durable,
                        covered,
                        snapshot,
                        cert,
                        first_batch,
                        &batches,
                        &frontier,
                    );
                    // The shipper's regency heals a replica that slept
                    // through leader changes and would otherwise drop all
                    // current-epoch traffic (and solo-escalate STOPs).
                    core.adopt_regency(regency);
                    if advanced || core.stalled_behind().is_none() {
                        // Either we caught up from this reply, or there was
                        // nothing to fetch (a spurious round): resume the
                        // normal timeout/view-change path immediately.
                        syncing = None;
                        last_progress = std::time::Instant::now();
                    }
                    // Otherwise stay syncing; the timeout path rotates to
                    // another shipper.
                }
                Vec::new()
            }
            // A peer-forwarded request takes the same verify stage as a
            // client-submitted one — the forwarding link authenticates the
            // *replica*, not the request's client.
            Ok(NetEvent::Peer {
                msg: SmrMsg::Request(request),
                ..
            }) => verify_and_submit(core, pool, vec![request], require_signed),
            Ok(NetEvent::Peer {
                msg:
                    SmrMsg::CkptShare {
                        replica,
                        covered,
                        state_root,
                        tip,
                        signature,
                    },
                ..
            }) => {
                certs.note(replica, covered, state_root, tip, signature);
                certs.try_assemble(core, durable);
                Vec::new()
            }
            Ok(NetEvent::Peer { from, msg }) => {
                // Consensus traffic from an epoch ahead of our regency means
                // we missed a leader change (restart or long partition): the
                // STOP/STOPDATA exchange is gone, so only state transfer —
                // whose reply carries the shipper's regency — can rejoin us.
                if syncing.is_none() {
                    if let SmrMsg::Consensus(c) = &msg {
                        if c.epoch().is_some_and(|e| e > core.regency()) {
                            syncing = Some(send_state_request(durable, transport, 0));
                        }
                    }
                }
                core.on_message(from, msg)
            }
            Ok(NetEvent::Client(request)) => {
                // Drain whatever else already queued so one pool dispatch
                // covers the whole burst (the verify stage's group commit).
                let mut batch = vec![request];
                while batch.len() < 512 {
                    match transport.try_recv() {
                        Some(NetEvent::Client(r)) => batch.push(r),
                        Some(other) => {
                            backlog.push_back(other);
                            break;
                        }
                        None => break,
                    }
                }
                // Light-client read-proof requests are answered locally from
                // the certified checkpoint — never ordered. When we cannot
                // serve one (no certificate assembled yet, index out of
                // range) we stay silent and let the client retry or ask
                // another replica.
                batch.retain(|request| {
                    let Some(chunk) = parse_read_proof_request(&request.payload) else {
                        return true;
                    };
                    if let Ok(Some(proof)) = durable.prove_state_chunk(chunk) {
                        transport.reply(Reply {
                            client: request.client,
                            seq: request.seq,
                            result: smartchain_codec::to_bytes(&proof),
                            replica: me,
                        });
                    }
                    false
                });
                // Retransmissions of already-delivered requests are served
                // from the reply cache instead of dying silently at the
                // dedup frontier.
                batch.retain(|request| {
                    if core
                        .delivered_up_to(request.client)
                        .is_none_or(|s| request.seq > s)
                    {
                        return true;
                    }
                    if let Some(reply) = reply_cache.get(&request.client) {
                        if reply.seq == request.seq {
                            transport.reply(reply.clone());
                        }
                    }
                    false
                });
                verify_and_submit(core, pool, batch, require_signed)
            }
            Ok(NetEvent::PeerUp(peer)) => {
                // A (re)established link: re-send synchronizer state the
                // peer cannot regenerate, and nudge our own recovery if we
                // were waiting on exactly this peer.
                if let Some(sync) = &mut syncing {
                    if shipper_for(me, transport.n(), sync.attempt) == peer {
                        *sync = send_state_request(durable, transport, sync.attempt);
                    }
                }
                core.on_peer_reconnect(peer)
            }
            Ok(NetEvent::Shutdown) | Err(RecvError::Closed) => return,
            Err(RecvError::Timeout) => {
                if let Some(sync) = &mut syncing {
                    // Unanswered state request: rotate shippers. Give up —
                    // re-enabling the normal timeout/view-change path —
                    // once every peer was tried and the delivery gap healed
                    // through ordinary consensus, or after two full
                    // rotations regardless: if no peer's log can serve the
                    // gap (e.g. an instance that died undecided with a
                    // crashed leader), only a leader change can fill it,
                    // and a replica stuck in `syncing` forever would never
                    // vote for one.
                    if sync.asked_at.elapsed() >= timeout {
                        let next = sync.attempt + 1;
                        let peers = transport.n().saturating_sub(1).max(1);
                        if next >= peers && (core.stalled_behind().is_none() || next >= 2 * peers) {
                            syncing = None;
                        } else {
                            *sync = send_state_request(durable, transport, next);
                        }
                    }
                    Vec::new()
                } else if last_progress.elapsed() >= timeout && core.stalled_behind().is_some() {
                    // Decisions are buffered past a hole nobody will re-run
                    // consensus for (we restarted or our link dropped the
                    // decision): fetch the gap from a peer.
                    syncing = Some(send_state_request(durable, transport, 0));
                    Vec::new()
                } else if core.pending_len() > 0 && last_progress.elapsed() >= timeout {
                    if std::env::var("SC_RT_DEBUG").is_ok() {
                        eprintln!(
                            "[rt] replica {me} timeout: regency={} leader={} pending={} ld={}",
                            core.regency(),
                            core.leader(),
                            core.pending_len(),
                            core.last_delivered()
                        );
                    }
                    core.on_progress_timeout()
                } else {
                    Vec::new()
                }
            }
        };
        // Outputs must hit the wire in emission order (a SYNC must precede
        // the re-proposal it enables).
        for out in outputs {
            match out {
                CoreOutput::Broadcast(msg) => transport.broadcast(&msg),
                CoreOutput::Send(to, msg) => transport.send(to, msg),
                CoreOutput::Deliver(batch) => {
                    last_progress = std::time::Instant::now();
                    match durable.apply_batch(&batch) {
                        Ok(results) => {
                            // One fan-out per decided batch: backends that
                            // batch (TCP) queue every reply before flushing.
                            let replies = batch
                                .requests
                                .iter()
                                .zip(results)
                                .map(|(request, result)| Reply {
                                    client: request.client,
                                    seq: request.seq,
                                    result,
                                    replica: me,
                                })
                                .collect::<Vec<Reply>>();
                            for reply in &replies {
                                reply_cache.insert(reply.client, reply.clone());
                            }
                            transport.reply_all(replies);
                            // A checkpoint was cut while applying: sign its
                            // basis and gossip the share so the cluster can
                            // assemble the quorum certificate.
                            if let Some((covered, state_root, tip)) =
                                durable.take_checkpoint_announcement()
                            {
                                let signature =
                                    core.sign(&ckpt_sign_payload(covered, &state_root, &tip));
                                certs.note(me, covered, state_root, tip, signature);
                                certs.try_assemble(core, durable);
                                transport.broadcast(&SmrMsg::CkptShare {
                                    replica: me,
                                    covered,
                                    state_root,
                                    tip,
                                    signature,
                                });
                            }
                        }
                        Err(e) => {
                            // The core already advanced past this batch;
                            // continuing without the record would shift the
                            // record-index == batch−1 mapping forever (our
                            // state replies would carry wrong-numbered
                            // proofs). Crash-stop and let recovery +
                            // state transfer heal on restart.
                            eprintln!("replica {me}: apply_batch failed ({e}); halting");
                            return;
                        }
                    }
                }
                CoreOutput::NeedStateTransfer { .. } => {
                    if syncing.is_none() {
                        syncing = Some(send_state_request(durable, transport, 0));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-rt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn executes_operations_against_real_disk() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("exec")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        // Counter adds payload bytes; replies carry the running sum.
        let r1 = cluster
            .execute(vec![5], Duration::from_secs(10))
            .expect("op 1");
        assert_eq!(u64::from_le_bytes(r1[..8].try_into().unwrap()), 5);
        let r2 = cluster
            .execute(vec![7], Duration::from_secs(10))
            .expect("op 2");
        assert_eq!(u64::from_le_bytes(r2[..8].try_into().unwrap()), 12);
        cluster.shutdown();
    }

    #[test]
    fn state_survives_restart_from_disk() {
        let dir = fresh_dir("restart");
        let config = RuntimeConfig {
            storage_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config.clone(), CounterApp::new).expect("boot");
        cluster
            .execute(vec![9], Duration::from_secs(10))
            .expect("op");
        cluster.shutdown();
        // Reboot on the same directories: the durable logs replay. A reused
        // (client, seq) is never re-executed — the recovered duplicate
        // filters reject it — but the reply cache (rebuilt from checkpoint
        // metadata + replay) answers the retransmission with the ORIGINAL
        // result, so a client that lost the reply to a restart isn't wedged.
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("reboot");
        let reused = Request {
            client: 0xC11E27,
            seq: 1, // the pre-restart op's sequence number
            payload: vec![100],
            signature: None,
        };
        let cached = cluster
            .execute_request(reused, Duration::from_secs(10))
            .expect("retransmission answered from the recovered reply cache");
        assert_eq!(
            u64::from_le_bytes(cached[..8].try_into().unwrap()),
            9,
            "the cached reply carries the original result, not a re-execution"
        );
        let fresh = Request {
            client: 0xC11E27,
            seq: 2,
            payload: vec![1],
            signature: None,
        };
        let r = cluster
            .execute_request(fresh, Duration::from_secs(10))
            .expect("op after reboot");
        assert_eq!(
            u64::from_le_bytes(r[..8].try_into().unwrap()),
            10,
            "9 + 1 across restart"
        );
        cluster.shutdown();
    }

    #[test]
    fn signed_requests_verified_in_pool_batches() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("signed")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        let sk = SecretKey::from_seed(Backend::Sim, &[99u8; 32]);
        let client = 0xC0FFEE;
        // A correctly signed request executes.
        let payload = vec![6u8];
        let sig = sk.sign(&Request::sign_payload(client, 1, &payload));
        let request = Request {
            client,
            seq: 1,
            payload,
            signature: Some((sk.public_key(), sig)),
        };
        let r = cluster
            .execute_request(request, Duration::from_secs(10))
            .expect("signed op");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 6);
        // A forged one (signature over different bytes) dies in the verify
        // stage: no replica orders it, so no reply quorum ever forms.
        let bad_sig = sk.sign(b"not the request");
        let forged = Request {
            client,
            seq: 2,
            payload: vec![100u8],
            signature: Some((sk.public_key(), bad_sig)),
        };
        let err = cluster.execute_request(forged, Duration::from_millis(700));
        assert!(err.is_err(), "forged request must not execute");
        // The cluster is still live afterwards.
        let sig = sk.sign(&Request::sign_payload(client, 3, &[1u8]));
        let request = Request {
            client,
            seq: 3,
            payload: vec![1u8],
            signature: Some((sk.public_key(), sig)),
        };
        let r = cluster
            .execute_request(request, Duration::from_secs(10))
            .expect("post-forgery op");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 7);
        cluster.shutdown();
    }

    #[test]
    fn survives_one_replica_crash() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("crash")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        cluster
            .execute(vec![1], Duration::from_secs(10))
            .expect("warm-up");
        cluster.kill_replica(3);
        let r = cluster
            .execute(vec![2], Duration::from_secs(10))
            .expect("op with f crashed");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 3);
        cluster.shutdown();
    }

    #[test]
    fn survives_leader_crash() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("leadercrash")),
            progress_timeout: Duration::from_millis(200),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        cluster
            .execute(vec![1], Duration::from_secs(10))
            .expect("warm-up");
        cluster.kill_replica(0); // the initial leader
        let r = cluster
            .execute(vec![4], Duration::from_secs(20))
            .expect("op after leader death");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 5);
        cluster.shutdown();
    }
}
