//! A real-time, in-process deployment of the SMR stack: one OS thread per
//! replica, std mpsc channels as the (authenticated) point-to-point links,
//! wall-clock progress timeouts, and real durable storage through
//! [`DurableApp`].
//!
//! The protocol cores are the same sans-IO state machines the simulator
//! drives; this module shows they run unchanged against real time and real
//! disks, and gives downstream users an embeddable local cluster (tests,
//! demos, single-machine deployments).

use crate::app::Application;
use crate::durability::DurableApp;
use crate::ordering::{CoreOutput, OrderingConfig, OrderingCore, SmrMsg};
use crate::types::{Reply, Request};
use smartchain_consensus::{ReplicaId, View};
use smartchain_crypto::keys::{Backend, SecretKey};
use smartchain_crypto::pool::{VerifyItem, VerifyPool};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages on the internal links.
enum Wire {
    Peer { from: ReplicaId, msg: SmrMsg },
    Client(Request),
    Shutdown,
}

/// Configuration of a local threaded cluster.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of replicas (3f+1 for f faults).
    pub replicas: usize,
    /// Batch bound.
    pub max_batch: usize,
    /// Progress timeout before a leader change.
    pub progress_timeout: Duration,
    /// Storage root (one subdirectory per replica); `None` = temp dir.
    pub storage_dir: Option<PathBuf>,
    /// Checkpoint period in batches.
    pub checkpoint_period: u64,
    /// Worker threads in each replica's signature-verification pool (the
    /// pipeline's verify stage; client requests are checked in batches off
    /// the ordering thread).
    pub verify_workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            replicas: 4,
            max_batch: 64,
            progress_timeout: Duration::from_millis(500),
            storage_dir: None,
            checkpoint_period: 128,
            verify_workers: 2,
        }
    }
}

/// Handle to a running local cluster.
pub struct LocalCluster {
    inboxes: Vec<Sender<Wire>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    f: usize,
    next_seq: u64,
    client_id: u64,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("replicas", &self.inboxes.len())
            .finish_non_exhaustive()
    }
}

impl LocalCluster {
    /// Boots `config.replicas` replica threads running `make_app()` behind
    /// durable logs.
    ///
    /// # Errors
    ///
    /// Propagates storage initialization failures.
    pub fn start<A: Application>(
        config: RuntimeConfig,
        make_app: impl Fn() -> A,
    ) -> std::io::Result<LocalCluster> {
        let n = config.replicas;
        let secrets: Vec<SecretKey> = (0..n)
            .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 200; 32]))
            .collect();
        let view = View {
            id: 0,
            members: secrets.iter().map(|s| s.public_key()).collect(),
        };
        let root = config.storage_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("smartchain-runtime-{}", std::process::id()))
        });
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let mut inboxes = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<Wire>();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(n);
        for (me, rx) in receivers.into_iter().enumerate() {
            let mut core = OrderingCore::new(
                me,
                view.clone(),
                secrets[me].clone(),
                OrderingConfig {
                    max_batch: config.max_batch,
                    ..OrderingConfig::default()
                },
                0,
            );
            let mut durable = DurableApp::open(
                make_app(),
                root.join(format!("replica-{me}")),
                config.checkpoint_period,
            )?;
            let peers = inboxes.clone();
            let replies = reply_tx.clone();
            let timeout = config.progress_timeout;
            let verify_workers = config.verify_workers.max(1);
            handles.push(std::thread::spawn(move || {
                let pool = VerifyPool::new(verify_workers);
                replica_loop(
                    me,
                    &mut core,
                    &mut durable,
                    rx,
                    &peers,
                    &replies,
                    timeout,
                    &pool,
                );
            }));
        }
        Ok(LocalCluster {
            inboxes,
            replies: reply_rx,
            handles,
            f: (n - 1) / 3,
            next_seq: 0,
            client_id: 0xC11E27,
        })
    }

    /// Crashes a replica (closes its inbox; its thread exits). For testing
    /// fault tolerance of the live cluster.
    pub fn kill_replica(&mut self, replica: ReplicaId) {
        let (dead_tx, _) = mpsc::channel();
        if let Some(slot) = self.inboxes.get_mut(replica) {
            let old = std::mem::replace(slot, dead_tx);
            let _ = old.send(Wire::Shutdown);
        }
    }

    /// Submits an operation and waits for `f+1` matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum of matching replies arrives in
    /// `deadline`.
    pub fn execute(&mut self, payload: Vec<u8>, deadline: Duration) -> std::io::Result<Vec<u8>> {
        self.next_seq += 1;
        let request = Request {
            client: self.client_id,
            seq: self.next_seq,
            payload,
            signature: None,
        };
        self.execute_request(request, deadline)
    }

    /// Submits a pre-built request (e.g. a client-signed one, exercising the
    /// replicas' batched verify stage) and waits for `f+1` matching replies.
    ///
    /// # Errors
    ///
    /// Returns `TimedOut` if no quorum of matching replies arrives in
    /// `deadline` — which is also what a rejected (forged) request looks
    /// like, since replicas drop it before ordering.
    pub fn execute_request(
        &mut self,
        request: Request,
        deadline: Duration,
    ) -> std::io::Result<Vec<u8>> {
        self.next_seq = self.next_seq.max(request.seq);
        for inbox in &self.inboxes {
            let _ = inbox.send(Wire::Client(request.clone()));
        }
        let needed = self.f + 1;
        let mut tally: HashMap<Vec<u8>, std::collections::HashSet<ReplicaId>> = HashMap::new();
        let deadline_at = std::time::Instant::now() + deadline;
        loop {
            let remaining = deadline_at
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::TimedOut, "no reply quorum")
                })?;
            match self.replies.recv_timeout(remaining) {
                Ok(reply) if reply.seq == request.seq && reply.client == request.client => {
                    let set = tally.entry(reply.result.clone()).or_default();
                    set.insert(reply.replica);
                    if set.len() >= needed {
                        return Ok(reply.result);
                    }
                }
                Ok(_) => {} // stale reply from an earlier operation
                Err(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no reply quorum",
                    ))
                }
            }
        }
    }

    /// Shuts the cluster down and joins the replica threads.
    pub fn shutdown(mut self) {
        for inbox in &self.inboxes {
            let _ = inbox.send(Wire::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Batched verify stage (wall-clock backend): checks every signed request in
/// `batch` on the pool lanes at once and feeds the survivors to the order
/// stage. Unsigned requests pass through (signature-free deployments).
fn verify_and_submit(
    core: &mut OrderingCore,
    pool: &VerifyPool,
    batch: Vec<Request>,
) -> Vec<CoreOutput> {
    let mut checks = Vec::new();
    let mut passed = Vec::new();
    for (i, request) in batch.iter().enumerate() {
        match &request.signature {
            Some((key, sig)) => checks.push(VerifyItem {
                tag: i,
                public: *key,
                msg: Request::sign_payload(request.client, request.seq, &request.payload),
                sig: *sig,
            }),
            None => passed.push(i),
        }
    }
    passed.extend(
        pool.verify_tagged(checks)
            .into_iter()
            .filter_map(|(i, ok)| ok.then_some(i)),
    );
    passed.sort_unstable(); // keep arrival order among survivors
    let mut outputs = Vec::new();
    for i in passed {
        outputs.extend(core.submit(batch[i].clone()));
    }
    outputs
}

#[allow(clippy::too_many_arguments)]
fn replica_loop<A: Application>(
    me: ReplicaId,
    core: &mut OrderingCore,
    durable: &mut DurableApp<A>,
    rx: Receiver<Wire>,
    peers: &[Sender<Wire>],
    replies: &Sender<Reply>,
    timeout: Duration,
    pool: &VerifyPool,
) {
    let mut last_progress = std::time::Instant::now();
    // Non-client messages encountered while draining a verify batch wait
    // here and are processed before blocking on the channel again.
    let mut backlog: VecDeque<Wire> = VecDeque::new();
    loop {
        let event = match backlog.pop_front() {
            Some(wire) => Ok(wire),
            None => rx.recv_timeout(timeout),
        };
        let outputs = match event {
            Ok(Wire::Peer { from, msg }) => core.on_message(from, msg),
            Ok(Wire::Client(request)) => {
                // Drain whatever else already queued so one pool dispatch
                // covers the whole burst (the verify stage's group commit).
                let mut batch = vec![request];
                while batch.len() < 512 {
                    match rx.try_recv() {
                        Ok(Wire::Client(r)) => batch.push(r),
                        Ok(other) => {
                            backlog.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                verify_and_submit(core, pool, batch)
            }
            Ok(Wire::Shutdown) => return,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if core.pending_len() > 0 && last_progress.elapsed() >= timeout {
                    if std::env::var("SC_RT_DEBUG").is_ok() {
                        eprintln!(
                            "[rt] replica {me} timeout: regency={} leader={} pending={} ld={}",
                            core.regency(),
                            core.leader(),
                            core.pending_len(),
                            core.last_delivered()
                        );
                    }
                    core.on_progress_timeout()
                } else {
                    Vec::new()
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        // Outputs must hit the wire in emission order (a SYNC must precede
        // the re-proposal it enables).
        for out in outputs {
            match out {
                CoreOutput::Broadcast(msg) => {
                    for (r, peer) in peers.iter().enumerate() {
                        if r != me {
                            let _ = peer.send(Wire::Peer {
                                from: me,
                                msg: msg.clone(),
                            });
                        }
                    }
                }
                CoreOutput::Send(to, msg) => {
                    if let Some(peer) = peers.get(to) {
                        let _ = peer.send(Wire::Peer { from: me, msg });
                    }
                }
                CoreOutput::Deliver(batch) => {
                    last_progress = std::time::Instant::now();
                    if let Ok(results) = durable.apply_batch(&batch.requests) {
                        for (request, result) in batch.requests.iter().zip(results) {
                            let _ = replies.send(Reply {
                                client: request.client,
                                seq: request.seq,
                                result,
                                replica: me,
                            });
                        }
                    }
                }
                CoreOutput::NeedStateTransfer { .. } => {
                    // Out of scope for the local runtime: replicas share fate
                    // in one process and never lag beyond the window.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CounterApp;

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smartchain-rt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn executes_operations_against_real_disk() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("exec")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        // Counter adds payload bytes; replies carry the running sum.
        let r1 = cluster
            .execute(vec![5], Duration::from_secs(10))
            .expect("op 1");
        assert_eq!(u64::from_le_bytes(r1[..8].try_into().unwrap()), 5);
        let r2 = cluster
            .execute(vec![7], Duration::from_secs(10))
            .expect("op 2");
        assert_eq!(u64::from_le_bytes(r2[..8].try_into().unwrap()), 12);
        cluster.shutdown();
    }

    #[test]
    fn state_survives_restart_from_disk() {
        let dir = fresh_dir("restart");
        let config = RuntimeConfig {
            storage_dir: Some(dir.clone()),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config.clone(), CounterApp::new).expect("boot");
        cluster
            .execute(vec![9], Duration::from_secs(10))
            .expect("op");
        cluster.shutdown();
        // Reboot on the same directories: the durable logs replay.
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("reboot");
        let r = cluster
            .execute(vec![1], Duration::from_secs(10))
            .expect("op after reboot");
        assert_eq!(
            u64::from_le_bytes(r[..8].try_into().unwrap()),
            10,
            "9 + 1 across restart"
        );
        cluster.shutdown();
    }

    #[test]
    fn signed_requests_verified_in_pool_batches() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("signed")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        let sk = SecretKey::from_seed(Backend::Sim, &[99u8; 32]);
        let client = 0xC0FFEE;
        // A correctly signed request executes.
        let payload = vec![6u8];
        let sig = sk.sign(&Request::sign_payload(client, 1, &payload));
        let request = Request {
            client,
            seq: 1,
            payload,
            signature: Some((sk.public_key(), sig)),
        };
        let r = cluster
            .execute_request(request, Duration::from_secs(10))
            .expect("signed op");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 6);
        // A forged one (signature over different bytes) dies in the verify
        // stage: no replica orders it, so no reply quorum ever forms.
        let bad_sig = sk.sign(b"not the request");
        let forged = Request {
            client,
            seq: 2,
            payload: vec![100u8],
            signature: Some((sk.public_key(), bad_sig)),
        };
        let err = cluster.execute_request(forged, Duration::from_millis(700));
        assert!(err.is_err(), "forged request must not execute");
        // The cluster is still live afterwards.
        let sig = sk.sign(&Request::sign_payload(client, 3, &[1u8]));
        let request = Request {
            client,
            seq: 3,
            payload: vec![1u8],
            signature: Some((sk.public_key(), sig)),
        };
        let r = cluster
            .execute_request(request, Duration::from_secs(10))
            .expect("post-forgery op");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 7);
        cluster.shutdown();
    }

    #[test]
    fn survives_one_replica_crash() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("crash")),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        cluster
            .execute(vec![1], Duration::from_secs(10))
            .expect("warm-up");
        cluster.kill_replica(3);
        let r = cluster
            .execute(vec![2], Duration::from_secs(10))
            .expect("op with f crashed");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 3);
        cluster.shutdown();
    }

    #[test]
    fn survives_leader_crash() {
        let config = RuntimeConfig {
            storage_dir: Some(fresh_dir("leadercrash")),
            progress_timeout: Duration::from_millis(200),
            ..RuntimeConfig::default()
        };
        let mut cluster = LocalCluster::start(config, CounterApp::new).expect("boot");
        cluster
            .execute(vec![1], Duration::from_secs(10))
            .expect("warm-up");
        cluster.kill_replica(0); // the initial leader
        let r = cluster
            .execute(vec![4], Duration::from_secs(20))
            .expect("op after leader death");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), 5);
        cluster.shutdown();
    }
}
