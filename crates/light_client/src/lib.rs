//! Light client: headers + quorum certificates only (paper §II / §V-C).
//!
//! A light client never replays consensus and never holds application
//! state. Its trust anchor is the view's public keys; everything else is
//! *proved* to it:
//!
//! * [`HeaderTracker`] follows the simulated chain's header sequence,
//!   admitting a header only when its PERSIST [`Certificate`] carries a
//!   quorum of view signatures and its `hash_last_block` chains onto the
//!   previously accepted header (genesis hash for block 1). Against a
//!   tracked header, transaction and result membership proofs verify with
//!   [`HeaderTracker::verify_transaction`] / [`HeaderTracker::verify_result`]
//!   — the full node supplies the proof, the light client checks it against
//!   32 bytes of commitment.
//! * [`TcpLightClient`] drives the runtime deployment's verifiable-read
//!   path: it asks any single replica for a chunk of the latest certified
//!   checkpoint state and accepts the reply only if the bundled
//!   [`ReadProof`] verifies — a [`CheckpointCert`] signature quorum over the
//!   state root plus a Merkle membership proof for the chunk. Because the
//!   reply proves itself, a reply quorum of **one** suffices; a lying
//!   replica can only stay silent, not deceive.
//!
//! What this does NOT give: freshness. A certificate quorum proves the state
//! *was* checkpointed by the cluster, not that it is the newest checkpoint —
//! a stale-but-certified answer is detectable only by asking more replicas
//! (or tracking headers). That is the classic light-client trade-off and is
//! out of scope here.

use smartchain_codec::from_bytes;
use smartchain_consensus::View;
use smartchain_core::block::{Block, BlockHeader, Certificate, Genesis, ViewInfo};
use smartchain_crypto::Hash;
use smartchain_merkle as merkle;
use smartchain_smr::durability::ReadProof;
use smartchain_smr::runtime::read_proof_request_payload;
use smartchain_smr::transport::TcpClient;
use smartchain_smr::types::Request;
use std::io;
use std::time::Duration;

/// Why [`HeaderTracker::accept`] refused a header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LightClientError {
    /// The certificate is not a valid signature quorum for this header
    /// under the tracked view.
    BadCertificate,
    /// The header's number is not the next expected block.
    OutOfOrder,
    /// The header's `hash_last_block` does not chain onto the previously
    /// accepted header (or the genesis hash for block 1).
    BrokenChain,
}

impl std::fmt::Display for LightClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LightClientError::BadCertificate => write!(f, "certificate does not verify"),
            LightClientError::OutOfOrder => write!(f, "header is not the next expected block"),
            LightClientError::BrokenChain => write!(f, "header does not chain onto the chain tip"),
        }
    }
}

impl std::error::Error for LightClientError {}

/// Tracks the certified header sequence of a SmartChain instance, holding
/// headers and the view only — no bodies, no application state, no
/// consensus replay. O(header) per block instead of O(block).
#[derive(Clone, Debug)]
pub struct HeaderTracker {
    view: ViewInfo,
    /// Hash the next header must chain onto.
    anchor: Hash,
    /// Accepted headers; `headers[i]` is block `i + 1`.
    headers: Vec<BlockHeader>,
}

impl HeaderTracker {
    /// Starts a tracker from the genesis configuration — the same trust
    /// anchor every full node starts from.
    pub fn new(genesis: &Genesis) -> HeaderTracker {
        HeaderTracker {
            view: genesis.view.clone(),
            anchor: genesis.hash(),
            headers: Vec::new(),
        }
    }

    /// Accepts the next header if its certificate carries a signature
    /// quorum of the view and it chains onto the current tip.
    ///
    /// # Errors
    ///
    /// [`LightClientError`] describing the first check that failed; the
    /// tracker is unchanged then.
    pub fn accept(
        &mut self,
        header: BlockHeader,
        certificate: &Certificate,
    ) -> Result<(), LightClientError> {
        if header.number != self.headers.len() as u64 + 1 {
            return Err(LightClientError::OutOfOrder);
        }
        if header.hash_last_block != self.anchor {
            return Err(LightClientError::BrokenChain);
        }
        if !certificate.verify(&header, &self.view) {
            return Err(LightClientError::BadCertificate);
        }
        self.anchor = header.hash();
        self.headers.push(header);
        Ok(())
    }

    /// Highest accepted block number (0 = none yet).
    pub fn height(&self) -> u64 {
        self.headers.len() as u64
    }

    /// The accepted header for block `number`, if tracked.
    pub fn header(&self, number: u64) -> Option<&BlockHeader> {
        number
            .checked_sub(1)
            .and_then(|i| self.headers.get(i as usize))
    }

    /// Verifies a transaction membership proof against the tracked header
    /// of block `number` (leaf 0 is the consensus id, leaf `i + 1` the
    /// `i`-th encoded request — see
    /// [`smartchain_core::block::BlockBody::transaction_leaves`]).
    pub fn verify_transaction(&self, number: u64, leaf: &[u8], proof: &merkle::Proof) -> bool {
        self.header(number)
            .is_some_and(|h| Block::verify_transaction(h, leaf, proof))
    }

    /// Verifies a result membership proof against the tracked header of
    /// block `number` (proofs from
    /// [`smartchain_core::block::Block::prove_result`] fold the state root
    /// in as their final path element).
    pub fn verify_result(&self, number: u64, result: &[u8], proof: &merkle::Proof) -> bool {
        self.header(number)
            .is_some_and(|h| Block::verify_result(h, result, proof))
    }
}

/// A light client of a runtime (TCP) deployment: verifiable reads of the
/// cluster's certified checkpoint state with a reply quorum of one.
pub struct TcpLightClient {
    client: TcpClient,
    view: View,
    client_id: u64,
    next_seq: u64,
}

impl std::fmt::Debug for TcpLightClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpLightClient")
            .field("client_id", &self.client_id)
            .finish_non_exhaustive()
    }
}

impl TcpLightClient {
    /// Creates a light client of the cluster at `addrs`, trusting only the
    /// view's public keys. Connections are dialed lazily per request.
    pub fn connect(client_id: u64, addrs: Vec<String>, view: View) -> TcpLightClient {
        TcpLightClient {
            client: TcpClient::new(client_id, addrs),
            view,
            client_id,
            next_seq: 0,
        }
    }

    /// Fetches chunk `chunk` of the latest certified checkpoint state and
    /// verifies the returned [`ReadProof`] end-to-end: certificate quorum,
    /// root binding, membership proof, claimed index. A single reply
    /// suffices because the proof — not the replier — carries the trust;
    /// replicas that cannot serve (no certificate assembled yet) stay
    /// silent and the built-in retransmission retries until `deadline`.
    ///
    /// # Errors
    ///
    /// `TimedOut` when no replica answers within `deadline`; `InvalidData`
    /// when a reply arrives but its proof does not verify.
    pub fn read_chunk(&mut self, chunk: u64, deadline: Duration) -> io::Result<ReadProof> {
        self.next_seq += 1;
        let request = Request {
            client: self.client_id,
            seq: self.next_seq,
            payload: read_proof_request_payload(chunk),
            signature: None,
        };
        let result = self.client.execute_request(request, 1, deadline)?;
        let proof: ReadProof = from_bytes(&result)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "undecodable read proof"))?;
        if proof.chunk_index != chunk || !proof.verify(&self.view) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "read proof does not verify against the view",
            ));
        }
        Ok(proof)
    }

    /// Closes every connection and joins the reader threads.
    pub fn shutdown(self) {
        self.client.shutdown();
    }
}

// Re-exported so embedders of the light client need not depend on the smr
// crate directly for verification types.
pub use smartchain_smr::durability::CheckpointCert;

#[cfg(test)]
mod tests {
    use super::*;
    use smartchain_core::block::BlockBody;
    use smartchain_core::harness::ChainClusterBuilder;
    use smartchain_core::node::{ChainNode, NodeConfig};
    use smartchain_core::pipeline::persist::Variant;
    use smartchain_smr::app::CounterApp;
    use smartchain_smr::ordering::OrderingConfig;

    const SECOND: u64 = 1_000_000_000;

    /// Runs a strong-variant sim cluster and returns (genesis, chain): real
    /// quorum certificates over every header, produced by the full
    /// consensus + PERSIST pipeline.
    fn certified_chain() -> (Genesis, Vec<Block>) {
        let config = NodeConfig {
            variant: Variant::Strong,
            ordering: OrderingConfig {
                max_batch: 8,
                ..OrderingConfig::default()
            },
            ..NodeConfig::default()
        };
        let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
            .node_config(config)
            .clients(1, 2, Some(10))
            .build();
        cluster.run_until(30 * SECOND);
        assert_eq!(cluster.total_completed(), 20);
        let node: &ChainNode<CounterApp> = cluster.node(0);
        (node.genesis().clone(), node.chain())
    }

    /// The acceptance criterion: a light client holding only genesis +
    /// headers verifies a transaction's membership via a full node's proof,
    /// with every header admitted purely on its quorum certificate.
    #[test]
    fn tracker_follows_certified_headers_and_verifies_membership() {
        let (genesis, chain) = certified_chain();
        let mut tracker = HeaderTracker::new(&genesis);
        for block in &chain {
            tracker
                .accept(block.header, &block.certificate)
                .unwrap_or_else(|e| panic!("block {}: {e}", block.header.number));
        }
        assert_eq!(tracker.height(), chain.len() as u64);
        // A full node proves one transaction of a transaction block; the
        // light client verifies it against its tracked header alone.
        let block = chain
            .iter()
            .find(|b| matches!(&b.body, BlockBody::Transactions { requests, .. } if !requests.is_empty()))
            .expect("a transaction block");
        let leaves = block.body.transaction_leaves();
        let index = leaves.len() - 1; // last request leaf
        let proof = block.prove_transaction(index);
        assert!(tracker.verify_transaction(block.header.number, &leaves[index], &proof));
        // The wrong leaf, a replayed proof at another block, and a
        // tampered sibling all fail.
        assert!(!tracker.verify_transaction(block.header.number, b"forged", &proof));
        assert!(!tracker.verify_transaction(block.header.number + 1, &leaves[index], &proof));
        let mut tampered = proof.clone();
        tampered.path[0].0[0] ^= 1;
        assert!(!tracker.verify_transaction(block.header.number, &leaves[index], &tampered));
    }

    #[test]
    fn tracker_rejects_uncertified_reordered_and_forked_headers() {
        let (genesis, chain) = certified_chain();
        let mut tracker = HeaderTracker::new(&genesis);
        let first = &chain[0];
        // Stripped certificate → rejected.
        assert_eq!(
            tracker.accept(first.header, &Certificate::default()),
            Err(LightClientError::BadCertificate)
        );
        // Sub-quorum certificate → rejected.
        let weak = Certificate {
            signatures: first.certificate.signatures[..genesis.view.quorum() - 1].to_vec(),
        };
        assert_eq!(
            tracker.accept(first.header, &weak),
            Err(LightClientError::BadCertificate)
        );
        // Skipping ahead → rejected.
        assert_eq!(
            tracker.accept(chain[1].header, &chain[1].certificate),
            Err(LightClientError::OutOfOrder)
        );
        // A forked block 1 (tampered content, even with the real
        // certificate) → the certificate no longer matches the header.
        let mut forged = first.header;
        forged.hash_transactions = [0xAB; 32];
        assert_eq!(
            tracker.accept(forged, &first.certificate),
            Err(LightClientError::BadCertificate)
        );
        // The genuine sequence is accepted afterwards; a header whose
        // parent link does not match the tip is a broken chain.
        tracker.accept(first.header, &first.certificate).unwrap();
        let mut reparented = chain[1].header;
        reparented.hash_last_block = [0xCD; 32];
        assert_eq!(
            tracker.accept(reparented, &chain[1].certificate),
            Err(LightClientError::BrokenChain)
        );
        tracker
            .accept(chain[1].header, &chain[1].certificate)
            .unwrap();
        assert_eq!(tracker.height(), 2);
    }
}
