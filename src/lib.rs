//! # SmartChain
//!
//! A from-scratch Rust reproduction of **"From Byzantine Replication to
//! Blockchain: Consensus is Only the Beginning"** (Bessani et al., DSN 2020):
//! a permissioned blockchain platform layered on BFT state machine
//! replication, with a self-verifiable block ledger, strong (0-Persistence)
//! durability via the PERSIST phase, and fork-safe decentralized
//! reconfiguration through per-view consensus-key rotation.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`crypto`] — SHA-2, Ed25519 (RFC 8032), Merkle trees, verification pool
//! * [`codec`] — deterministic binary encoding
//! * [`storage`] — append-only logs, group-commit WAL, snapshots
//! * [`sim`] — deterministic discrete-event simulator with hardware models
//! * [`consensus`] — VP-Consensus and the Mod-SMaRt synchronizer
//! * [`smr`] — total ordering, clients, the Dura-SMaRt durability layer
//! * [`core`] — the SMARTCHAIN blockchain layer (the paper's contribution)
//! * [`coin`] — SMaRtCoin, the UTXO digital-coin application
//! * [`baselines`] — Tendermint- and Fabric-style comparator models
//!
//! # Quickstart
//!
//! ```
//! use smartchain::core::harness::ChainClusterBuilder;
//! use smartchain::core::audit::verify_chain;
//! use smartchain::smr::app::CounterApp;
//! use smartchain::sim::SECOND;
//!
//! let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
//!     .clients(1, 2, Some(10))
//!     .build();
//! cluster.run_until(30 * SECOND);
//! let node = cluster.node::<CounterApp>(0);
//! let report = verify_chain(&node.genesis().clone(), &node.chain())?;
//! assert!(report.blocks > 0);
//! # Ok::<(), smartchain::core::audit::AuditError>(())
//! ```

pub use smartchain_baselines as baselines;
pub use smartchain_codec as codec;
pub use smartchain_coin as coin;
pub use smartchain_consensus as consensus;
pub use smartchain_core as core;
pub use smartchain_crypto as crypto;
pub use smartchain_sim as sim;
pub use smartchain_smr as smr;
pub use smartchain_storage as storage;
