//! # SmartChain
//!
//! A from-scratch Rust reproduction of **"From Byzantine Replication to
//! Blockchain: Consensus is Only the Beginning"** (Bessani et al., DSN 2020):
//! a permissioned blockchain platform layered on BFT state machine
//! replication, with a self-verifiable block ledger, strong (0-Persistence)
//! durability via the PERSIST phase, and fork-safe decentralized
//! reconfiguration through per-view consensus-key rotation.
//!
//! # Module map
//!
//! The replica is an explicit **staged commit pipeline** — verify → order →
//! execute → persist → reply — with every stage a separate module, every
//! persistence rung a [`storage::DurabilityEngine`] backend, and a windowed
//! ordering core that keeps α > 1 consensus instances in flight while
//! earlier blocks execute and persist:
//!
//! * [`crypto`] — SHA-2, Ed25519 (RFC 8032), HMAC-SHA256 (frame
//!   authentication on the TCP links), Merkle trees, and the
//!   [`crypto::pool::VerifyPool`] powering the wall-clock verify stage.
//! * [`codec`] — deterministic canonical encoding; [`codec::Encode`] is the
//!   single source of truth for hashes, signatures, persistence *and* wire
//!   sizes (`encoded_len`), so the NIC model never drifts from the encoders.
//! * [`merkle`] — dependency-free binary Merkle trees over transaction
//!   lists, result lists, and fixed-size state chunks: roots, membership
//!   proofs ([`merkle::prove_chunk`]/[`merkle::verify`]), and the
//!   `chunked_root` that commits snapshots chunk-by-chunk so state transfer
//!   and light clients verify the same bytes the quorum certified.
//! * [`storage`] — the stable-storage substrate: CRC-framed logs
//!   (single-file [`storage::log::FileLog`] and the segmented
//!   [`storage::segmented::SegmentedLog`] — fixed-capacity segment files +
//!   manifest, O(segment-delete) prefix truncation, recovery that scans
//!   only the active segment), group-commit WAL ([`storage::wal`]),
//!   snapshots, and the [`storage::DurabilityEngine`] trait with the three
//!   persistence-ladder backends (memory / async / group commit, §V-C) —
//!   plus [`storage::SegmentedEngine`], all three rungs over one real-disk
//!   segmented log.
//! * [`sim`] — the deterministic discrete-event kernel with hardware models
//!   (NIC, disk, CPU + verification-pool lanes) and a self-contained seeded
//!   RNG ([`sim::rng`]); every run is reproducible bit-for-bit from its
//!   seed (pinned by `tests/seed_regression.rs`).
//! * [`consensus`] — VP-Consensus instances and the Mod-SMaRt
//!   synchronizer; leader changes collect locked values for every
//!   in-flight instance (per-instance STOPDATA/SYNC vectors).
//! * [`smr`] — the *windowed* total-order core (`OrderingConfig::alpha`
//!   consensus instances in flight at once, strictly in-order delivery;
//!   α = 1 reproduces the seed bit-for-bit; with
//!   `OrderingConfig::alpha_adaptive` the window is AIMD-controlled —
//!   grown on clean decisions, halved on repair — and a stalled frontier
//!   heals via a one-round-trip `InstanceFetch`/`InstanceRep` repair
//!   before any regency change), clients,
//!   [`smr::durability::DurableApp`] (durable delivery over any
//!   `DurabilityEngine`; group-commit segmented log by default — each
//!   record stores the raw decided value + decision proof, hash-chained,
//!   checkpoints truncate the covered prefix, and restart replays only the
//!   post-checkpoint suffix) — and the
//!   the deterministic parallel-EXECUTE scheduler ([`smr::exec`]: static
//!   per-transaction lane hints → a plan of parallel groups and serial
//!   barriers whose merged results are bit-identical to serial execution,
//!   run either inline or on a real [`smr::exec::ExecPool`]) — and the
//!   metal deployment layer: [`smr::transport`] abstracts the links
//!   (in-process channels, or length-framed HMAC-authenticated TCP driven
//!   by a per-replica poll reactor with automatic redial) and [`smr::runtime`]
//!   runs one replica loop over either — `LocalCluster` (threads +
//!   channels), `TcpCluster` (threads + loopback sockets), or
//!   `serve_replica` (one OS process per replica; see `examples/replica.rs`
//!   and `examples/client.rs`), with runtime state transfer so a killed
//!   and restarted replica rejoins from its disk plus a peer-shipped
//!   suffix.
//! * [`core`] — the SMARTCHAIN layer (the paper's contribution):
//!   blocks/ledger/audit, and the replica split into
//!   [`core::node`] (the actor spine) plus [`core::pipeline`] (the stages:
//!   verify, produce, persist, checkpoint, state transfer, reconfig). Up
//!   to α blocks ride EXECUTE/PERSIST concurrently — device syncs and
//!   PERSIST certificates complete out of order, replies release in block
//!   order. EXECUTE itself fans out over `NodeConfig::execute_lanes`
//!   lanes in virtual time: the stage charges the batch plan's critical
//!   path, so lane count changes timing but never block content
//!   (`tests/exec_lanes.rs` pins bit-identical chains across 1/2/8
//!   lanes). The ledger's engine medium is selectable
//!   (`NodeConfig::storage`): heap, or the real segmented log exercised in
//!   virtual time, with opt-in checkpoint-driven compaction
//!   (`compact_after_checkpoint`).
//! * [`light_client`] — verification without replication:
//!   [`light_client::HeaderTracker`] follows the header chain admitting
//!   blocks purely on their quorum certificates and checks
//!   transaction/result membership proofs against tracked headers, and
//!   [`light_client::TcpLightClient`] reads certified state chunks from a
//!   live cluster, trusting the returned `ReadProof` (checkpoint
//!   certificate + Merkle path) rather than the replica that served it
//!   (see `examples/light_client.rs`).
//! * [`coin`] — SMaRtCoin, the UTXO digital-coin application; its account
//!   state is hash-sharded into copy-on-write lane shards and every
//!   transaction exposes a static read/write footprint
//!   (`CoinTx::touched_ids`), which is what makes the parallel EXECUTE
//!   stage deterministic.
//! * [`baselines`] — Tendermint- and Fabric-style comparator models.
//!
//! # Quickstart
//!
//! ```
//! use smartchain::core::audit::verify_chain;
//! use smartchain::core::harness::ChainClusterBuilder;
//! use smartchain::sim::SECOND;
//! use smartchain::smr::app::CounterApp;
//!
//! let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
//!     .clients(1, 2, Some(10))
//!     .build();
//! cluster.run_until(30 * SECOND);
//! let node = cluster.node::<CounterApp>(0);
//! let report = verify_chain(&node.genesis().clone(), &node.chain())?;
//! assert!(report.blocks > 0);
//! # Ok::<(), smartchain::core::audit::AuditError>(())
//! ```

pub use smartchain_baselines as baselines;
pub use smartchain_codec as codec;
pub use smartchain_coin as coin;
pub use smartchain_consensus as consensus;
pub use smartchain_core as core;
pub use smartchain_crypto as crypto;
pub use smartchain_light_client as light_client;
pub use smartchain_merkle as merkle;
pub use smartchain_sim as sim;
pub use smartchain_smr as smr;
pub use smartchain_storage as storage;
