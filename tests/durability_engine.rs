//! DurabilityEngine contract tests across all three backends (the paper's
//! persistence ladder, §V-C):
//!
//! * crash recovery returns the longest valid prefix — nothing for
//!   ∞-persistence, the synced prefix for λ-persistence, the flushed prefix
//!   for group commit, and CRC-validated recovery on real files;
//! * group commit coalesces N appends into ≤⌈N/batch⌉ fsyncs, observable in
//!   engine statistics, on a real `FileLog`, and in the simulator's disk
//!   accounting.

use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{NodeConfig, Persistence, Variant};
use smartchain::sim::SECOND;
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;
use smartchain::storage::engine::{AsyncEngine, GroupCommitEngine, MemoryEngine};
use smartchain::storage::log::FileLog;
use smartchain::storage::mem::MemLog;
use smartchain::storage::{DurabilityEngine, RecordLog, SyncPolicy};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartchain-engine-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("log")
}

/// Appends five records, drives the policy's commit point after the third,
/// crashes (drops everything after the last real sync), and returns how many
/// records actually survive on the device — cross-checked against the
/// engine's own `durable_len` claim.
fn crash_survivors(mut engine: Box<dyn DurabilityEngine>) -> u64 {
    for i in 0..3u8 {
        engine.append(&[i]).unwrap();
    }
    engine.flush().unwrap();
    for i in 3..5u8 {
        engine.append(&[i]).unwrap();
    }
    let claimed = engine.durable_len();
    // Crash: the MemLog models the disk; everything unsynced evaporates.
    engine.simulate_crash();
    let survivors = engine.len();
    assert_eq!(
        survivors, claimed,
        "durable_len must equal what the device keeps across a crash"
    );
    for i in 0..survivors {
        assert_eq!(
            engine.read(i).unwrap().unwrap(),
            vec![i as u8],
            "surviving prefix is the written prefix, in order"
        );
    }
    survivors
}

#[test]
fn crash_recovery_longest_valid_prefix_per_backend() {
    // ∞-Persistence: nothing survives, by definition.
    assert_eq!(
        crash_survivors(Box::new(MemoryEngine::new(MemLog::new()))),
        0
    );
    // λ-Persistence: the policy never syncs on its own — all five records
    // are acknowledged, none are durable.
    assert_eq!(
        crash_survivors(Box::new(AsyncEngine::new(MemLog::new()))),
        0
    );
    // Group commit: the flush after record 3 made exactly that prefix
    // durable; the two later appends are still queued.
    assert_eq!(
        crash_survivors(Box::new(GroupCommitEngine::new(MemLog::new()))),
        3
    );
}

#[test]
fn crash_recovery_matches_memlog_crash_semantics() {
    // The engine's `durable_len` must agree with what the underlying
    // device actually keeps across a crash.
    let mut engine = GroupCommitEngine::new(MemLog::new());
    for i in 0..4u8 {
        engine.append(&[i]).unwrap();
    }
    engine.flush().unwrap();
    engine.append(&[4]).unwrap(); // queued, never flushed
    let claimed = engine.durable_len();
    let mut log = engine.into_inner();
    log.crash_to_last_sync();
    assert_eq!(
        log.len(),
        claimed,
        "engine's durability claim must match the device"
    );
    assert_eq!(log.len(), 4);
    assert_eq!(log.read(3).unwrap().unwrap(), vec![3]);
    assert_eq!(log.read(4).unwrap(), None);
}

#[test]
fn file_log_recovery_discards_torn_tail() {
    let path = tmp("torn");
    {
        let log = FileLog::open(&path, SyncPolicy::Async).unwrap();
        let mut engine = GroupCommitEngine::new(log);
        for i in 0..6u8 {
            engine.append(&[i; 32]).unwrap();
        }
        engine.flush().unwrap();
    }
    // Simulate a torn append: a partial frame at the tail (crash mid-write).
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xFF, 0xFF, 0xFF]).unwrap(); // 3 bytes of a 8+N frame
    }
    let recovered = FileLog::open(&path, SyncPolicy::Async).unwrap();
    assert_eq!(
        recovered.len(),
        6,
        "longest valid prefix: all flushed records"
    );
    for i in 0..6u8 {
        assert_eq!(recovered.read(i as u64).unwrap().unwrap(), vec![i; 32]);
    }
    // A corrupted record payload cuts the prefix at the corruption point.
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let frame = 8 + 32;
        f.seek(SeekFrom::Start((3 * frame + 8) as u64)).unwrap(); // record 3's payload
        f.write_all(&[0xAA]).unwrap();
    }
    let recovered = FileLog::open(&path, SyncPolicy::Async).unwrap();
    assert_eq!(
        recovered.len(),
        3,
        "CRC failure truncates to the valid prefix"
    );
}

#[test]
fn group_commit_coalesces_n_appends_into_n_over_batch_fsyncs() {
    let path = tmp("coalesce");
    let log = FileLog::open(&path, SyncPolicy::Async).unwrap();
    let mut engine = GroupCommitEngine::new(log);
    let (n, batch) = (40u64, 8u64);
    for i in 0..n {
        engine.append(&[i as u8; 16]).unwrap();
        if (i + 1) % batch == 0 {
            engine.flush().unwrap();
        }
    }
    engine.flush().unwrap(); // final partial batch (empty here: 40 % 8 == 0)
    let stats = engine.stats();
    assert_eq!(stats.records, n);
    assert!(
        stats.syncs <= n.div_ceil(batch),
        "{} appends in batches of {} must need at most {} fsyncs, used {}",
        n,
        batch,
        n.div_ceil(batch),
        stats.syncs
    );
    assert_eq!(engine.durable_len(), n);
    // And the records are really on disk, in order.
    let reopened = FileLog::open(&path, SyncPolicy::Async).unwrap();
    assert_eq!(reopened.len(), n);
    assert_eq!(reopened.read(17).unwrap().unwrap(), vec![17u8; 16]);
}

/// The simulator's device accounting and the engine's own statistics are two
/// views of the same persist stage — they must agree. Under Sync persistence
/// every produced block costs exactly one virtual fsync (charged by the disk
/// model) and one engine flush (the group-commit point), plus the genesis
/// sync that only the engine sees.
#[test]
fn sim_disk_accounting_matches_engine_stats() {
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(1, 2, Some(20))
        .build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 40);
    for r in 0..4 {
        let node = cluster.node::<CounterApp>(r);
        let blocks = node.chain().len() as u64;
        let stats = node.engine_stats().expect("active member");
        assert!(blocks > 0, "replica {r} produced blocks");
        assert_eq!(
            stats.records,
            blocks + 1,
            "replica {r}: genesis + one record per block"
        );
        assert_eq!(
            stats.syncs,
            blocks + 1,
            "replica {r}: one group-commit flush per block (+genesis)"
        );
        assert_eq!(
            cluster.sim().disk_syncs(r),
            blocks,
            "replica {r}: virtual disk charged exactly one fsync per block"
        );
    }
}

/// The ladder is *observable at recovery* (§V-C): after a crash, a Sync
/// replica still holds its flushed chain prefix locally, while a Memory
/// replica comes back empty and must refetch everything from its peers —
/// though both eventually catch up via state transfer.
#[test]
fn crash_recovery_observes_the_persistence_ladder() {
    fn height_right_after_recovery(persistence: Persistence) -> (u64, u64, u64) {
        let config = NodeConfig {
            variant: Variant::Weak,
            persistence,
            ordering: OrderingConfig {
                max_batch: 8,
                ..OrderingConfig::default()
            },
            ..NodeConfig::default()
        };
        let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
            .node_config(config)
            .clients(1, 4, Some(200))
            .build();
        cluster.sim().crash(3, 5 * SECOND);
        cluster.sim().recover(3, 10 * SECOND);
        // Sample at the recovery instant, before state transfer runs: what
        // does the replica's own disk still hold?
        cluster.run_until(10 * SECOND);
        let pre_crash = cluster.node::<CounterApp>(0).height().unwrap_or(0);
        let local = cluster.node::<CounterApp>(3).height().unwrap_or(0);
        cluster.run_until(40 * SECOND);
        let caught_up = cluster.node::<CounterApp>(3).height().unwrap_or(0);
        (pre_crash, local, caught_up)
    }

    let (peers_sync, local_sync, final_sync) = height_right_after_recovery(Persistence::Sync);
    assert!(peers_sync > 0);
    assert!(
        local_sync > 0,
        "Sync rung: the flushed prefix survives the crash locally (got height {local_sync})"
    );
    let (peers_mem, local_mem, final_mem) = height_right_after_recovery(Persistence::Memory);
    assert!(peers_mem > 0);
    assert_eq!(
        local_mem, 0,
        "Memory rung: nothing survives a crash; recovery starts from genesis"
    );
    // Both rungs converge again through state transfer.
    assert!(final_sync >= peers_sync, "Sync replica caught up");
    assert!(final_mem >= peers_mem, "Memory replica caught up");
}

/// Memory persistence: the engine carries the chain but nothing is durable,
/// and the virtual disk is never touched.
#[test]
fn memory_engine_keeps_chain_volatile() {
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Memory,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(1, 2, Some(10))
        .build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 20);
    for r in 0..4 {
        let node = cluster.node::<CounterApp>(r);
        assert!(!node.chain().is_empty());
        let stats = node.engine_stats().expect("active member");
        assert_eq!(stats.syncs, 0, "∞-persistence never syncs");
        assert_eq!(cluster.sim().disk_syncs(r), 0);
        assert_eq!(
            cluster.sim().disk_bytes(r),
            0,
            "memory mode never touches the disk"
        );
    }
}
