//! DurabilityEngine contract tests across all three backends (the paper's
//! persistence ladder, §V-C):
//!
//! * crash recovery returns the longest valid prefix — nothing for
//!   ∞-persistence, the synced prefix for λ-persistence, the flushed prefix
//!   for group commit, and CRC-validated recovery on real files;
//! * group commit coalesces N appends into ≤⌈N/batch⌉ fsyncs, observable in
//!   engine statistics, on a real `FileLog`, and in the simulator's disk
//!   accounting.

use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{NodeConfig, Persistence, StorageBackend, Variant};
use smartchain::sim::SECOND;
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;
use smartchain::storage::engine::{AsyncEngine, GroupCommitEngine, MemoryEngine};
use smartchain::storage::log::FileLog;
use smartchain::storage::mem::MemLog;
use smartchain::storage::{
    DurabilityEngine, RecordLog, SegmentConfig, SegmentedEngine, SegmentedLog, SyncPolicy,
};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smartchain-engine-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("log")
}

/// Appends five records, drives the policy's commit point after the third,
/// crashes (drops everything after the last real sync), and returns how many
/// records actually survive on the device — cross-checked against the
/// engine's own `durable_len` claim.
fn crash_survivors(mut engine: Box<dyn DurabilityEngine>) -> u64 {
    for i in 0..3u8 {
        engine.append(&[i]).unwrap();
    }
    engine.flush().unwrap();
    for i in 3..5u8 {
        engine.append(&[i]).unwrap();
    }
    let claimed = engine.durable_len();
    // Crash: the MemLog models the disk; everything unsynced evaporates.
    engine.simulate_crash();
    let survivors = engine.len();
    assert_eq!(
        survivors, claimed,
        "durable_len must equal what the device keeps across a crash"
    );
    for i in 0..survivors {
        assert_eq!(
            engine.read(i).unwrap().unwrap(),
            vec![i as u8],
            "surviving prefix is the written prefix, in order"
        );
    }
    survivors
}

#[test]
fn crash_recovery_longest_valid_prefix_per_backend() {
    // ∞-Persistence: nothing survives, by definition.
    assert_eq!(
        crash_survivors(Box::new(MemoryEngine::new(MemLog::new()))),
        0
    );
    // λ-Persistence: the policy never syncs on its own — all five records
    // are acknowledged, none are durable.
    assert_eq!(
        crash_survivors(Box::new(AsyncEngine::new(MemLog::new()))),
        0
    );
    // Group commit: the flush after record 3 made exactly that prefix
    // durable; the two later appends are still queued.
    assert_eq!(
        crash_survivors(Box::new(GroupCommitEngine::new(MemLog::new()))),
        3
    );
}

#[test]
fn crash_recovery_matches_memlog_crash_semantics() {
    // The engine's `durable_len` must agree with what the underlying
    // device actually keeps across a crash.
    let mut engine = GroupCommitEngine::new(MemLog::new());
    for i in 0..4u8 {
        engine.append(&[i]).unwrap();
    }
    engine.flush().unwrap();
    engine.append(&[4]).unwrap(); // queued, never flushed
    let claimed = engine.durable_len();
    let mut log = engine.into_inner();
    log.crash_to_last_sync();
    assert_eq!(
        log.len(),
        claimed,
        "engine's durability claim must match the device"
    );
    assert_eq!(log.len(), 4);
    assert_eq!(log.read(3).unwrap().unwrap(), vec![3]);
    assert_eq!(log.read(4).unwrap(), None);
}

#[test]
fn file_log_recovery_discards_torn_tail() {
    let path = tmp("torn");
    {
        let log = FileLog::open(&path, SyncPolicy::Async).unwrap();
        let mut engine = GroupCommitEngine::new(log);
        for i in 0..6u8 {
            engine.append(&[i; 32]).unwrap();
        }
        engine.flush().unwrap();
    }
    // Simulate a torn append: a partial frame at the tail (crash mid-write).
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xFF, 0xFF, 0xFF]).unwrap(); // 3 bytes of a 8+N frame
    }
    let recovered = FileLog::open(&path, SyncPolicy::Async).unwrap();
    assert_eq!(
        recovered.len(),
        6,
        "longest valid prefix: all flushed records"
    );
    for i in 0..6u8 {
        assert_eq!(recovered.read(i as u64).unwrap().unwrap(), vec![i; 32]);
    }
    // A corrupted record payload cuts the prefix at the corruption point.
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        let frame = 8 + 32;
        f.seek(SeekFrom::Start((3 * frame + 8) as u64)).unwrap(); // record 3's payload
        f.write_all(&[0xAA]).unwrap();
    }
    let recovered = FileLog::open(&path, SyncPolicy::Async).unwrap();
    assert_eq!(
        recovered.len(),
        3,
        "CRC failure truncates to the valid prefix"
    );
}

#[test]
fn group_commit_coalesces_n_appends_into_n_over_batch_fsyncs() {
    let path = tmp("coalesce");
    let log = FileLog::open(&path, SyncPolicy::Async).unwrap();
    let mut engine = GroupCommitEngine::new(log);
    let (n, batch) = (40u64, 8u64);
    for i in 0..n {
        engine.append(&[i as u8; 16]).unwrap();
        if (i + 1) % batch == 0 {
            engine.flush().unwrap();
        }
    }
    engine.flush().unwrap(); // final partial batch (empty here: 40 % 8 == 0)
    let stats = engine.stats();
    assert_eq!(stats.records, n);
    assert!(
        stats.syncs <= n.div_ceil(batch),
        "{} appends in batches of {} must need at most {} fsyncs, used {}",
        n,
        batch,
        n.div_ceil(batch),
        stats.syncs
    );
    assert_eq!(engine.durable_len(), n);
    // And the records are really on disk, in order.
    let reopened = FileLog::open(&path, SyncPolicy::Async).unwrap();
    assert_eq!(reopened.len(), n);
    assert_eq!(reopened.read(17).unwrap().unwrap(), vec![17u8; 16]);
}

/// The simulator's device accounting and the engine's own statistics are two
/// views of the same persist stage — they must agree. Under Sync persistence
/// every produced block costs exactly one virtual fsync (charged by the disk
/// model) and one engine flush (the group-commit point), plus the genesis
/// sync that only the engine sees.
#[test]
fn sim_disk_accounting_matches_engine_stats() {
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(1, 2, Some(20))
        .build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 40);
    for r in 0..4 {
        let node = cluster.node::<CounterApp>(r);
        let blocks = node.chain().len() as u64;
        let stats = node.engine_stats().expect("active member");
        assert!(blocks > 0, "replica {r} produced blocks");
        assert_eq!(
            stats.records,
            blocks + 1,
            "replica {r}: genesis + one record per block"
        );
        assert_eq!(
            stats.syncs,
            blocks + 1,
            "replica {r}: one group-commit flush per block (+genesis)"
        );
        assert_eq!(
            cluster.sim().disk_syncs(r),
            blocks,
            "replica {r}: virtual disk charged exactly one fsync per block"
        );
    }
}

/// The ladder is *observable at recovery* (§V-C): after a crash, a Sync
/// replica still holds its flushed chain prefix locally, while a Memory
/// replica comes back empty and must refetch everything from its peers —
/// though both eventually catch up via state transfer.
#[test]
fn crash_recovery_observes_the_persistence_ladder() {
    fn height_right_after_recovery(persistence: Persistence) -> (u64, u64, u64) {
        let config = NodeConfig {
            variant: Variant::Weak,
            persistence,
            ordering: OrderingConfig {
                max_batch: 8,
                ..OrderingConfig::default()
            },
            ..NodeConfig::default()
        };
        let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
            .node_config(config)
            .clients(1, 4, Some(200))
            .build();
        cluster.sim().crash(3, 5 * SECOND);
        cluster.sim().recover(3, 10 * SECOND);
        // Sample at the recovery instant, before state transfer runs: what
        // does the replica's own disk still hold?
        cluster.run_until(10 * SECOND);
        let pre_crash = cluster.node::<CounterApp>(0).height().unwrap_or(0);
        let local = cluster.node::<CounterApp>(3).height().unwrap_or(0);
        cluster.run_until(40 * SECOND);
        let caught_up = cluster.node::<CounterApp>(3).height().unwrap_or(0);
        (pre_crash, local, caught_up)
    }

    let (peers_sync, local_sync, final_sync) = height_right_after_recovery(Persistence::Sync);
    assert!(peers_sync > 0);
    assert!(
        local_sync > 0,
        "Sync rung: the flushed prefix survives the crash locally (got height {local_sync})"
    );
    let (peers_mem, local_mem, final_mem) = height_right_after_recovery(Persistence::Memory);
    assert!(peers_mem > 0);
    assert_eq!(
        local_mem, 0,
        "Memory rung: nothing survives a crash; recovery starts from genesis"
    );
    // Both rungs converge again through state transfer.
    assert!(final_sync >= peers_sync, "Sync replica caught up");
    assert!(final_mem >= peers_mem, "Memory replica caught up");
}

/// The segmented engine observes the same ladder semantics as the heap
/// engines, against real segment files: flushed prefix survives a
/// crash-and-reopen under group commit, nothing extra does.
#[test]
fn segmented_engine_crash_recovery_ladder() {
    let dir = tmp("seg-ladder");
    let cfg = SegmentConfig {
        records_per_segment: 2,
    };
    {
        let mut engine = SegmentedEngine::open(&dir, SyncPolicy::Sync, cfg).unwrap();
        for i in 0..3u8 {
            engine.append(&[i]).unwrap();
        }
        engine.flush().unwrap();
        for i in 3..5u8 {
            engine.append(&[i]).unwrap();
        }
        assert_eq!(engine.durable_len(), 3, "two appends still queued");
        assert_eq!(engine.len(), 5, "queued records remain readable");
        assert_eq!(engine.read(4).unwrap().unwrap(), vec![4]);
        // Crash without flushing: queued records die with the process.
    }
    let engine = SegmentedEngine::open(&dir, SyncPolicy::Sync, cfg).unwrap();
    assert_eq!(engine.len(), 3, "exactly the flushed prefix survives");
    for i in 0..3u64 {
        assert_eq!(engine.read(i).unwrap().unwrap(), vec![i as u8]);
    }
    // The flush spanned a segment roll ([0..2) sealed, record 2 active):
    // recovery still only scanned the active segment.
    let stats = engine.recovery_stats().expect("segmented engine");
    assert_eq!(stats.segments_scanned, 1);
}

/// Crash in the middle of a checkpoint truncation, at every point the
/// manifest-first protocol allows: before the manifest rename (old manifest,
/// all files — the pre-truncation log recovers) and after it (new manifest,
/// dropped files linger as orphans — the truncated log recovers and the
/// orphans are swept). Either way no retained record is lost.
#[test]
fn segmented_crash_mid_truncation_recovers() {
    use std::io::Write;
    let cfg = SegmentConfig {
        records_per_segment: 2,
    };
    // Case 1: crash BEFORE the manifest rename — manifest and every segment
    // file are still the pre-truncation state (the rename is the atomic
    // commit point; deletes happen only after it). Emulated by snapshotting
    // the whole directory before truncating and restoring it afterwards.
    let dir = tmp("seg-trunc-pre").parent().unwrap().join("pre");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg).unwrap();
        for i in 0..6u64 {
            log.append(&[i as u8]).unwrap();
        }
    }
    let saved: Vec<(std::path::PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| (e.path(), std::fs::read(e.path()).unwrap()))
        .collect();
    {
        let mut log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg).unwrap();
        log.truncate_prefix(4).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::create_dir_all(&dir).unwrap();
    for (path, bytes) in &saved {
        std::fs::File::create(path)
            .unwrap()
            .write_all(bytes)
            .unwrap();
    }
    // Recovery sees the pre-truncation log in full: the truncation simply
    // never happened, which is the correct (conservative) outcome.
    let log = SegmentedLog::open(&dir, SyncPolicy::Sync, cfg).unwrap();
    assert_eq!(log.len(), 6);
    for i in 0..6u64 {
        assert_eq!(log.read(i).unwrap().unwrap(), vec![i as u8]);
    }

    // Case 2: crash AFTER the manifest rename, before the deletes — the
    // dropped segment file is still on disk; open must ignore and sweep it.
    let dir2 = tmp("seg-trunc-post").parent().unwrap().join("post");
    let _ = std::fs::remove_dir_all(&dir2);
    {
        let mut log = SegmentedLog::open(&dir2, SyncPolicy::Sync, cfg).unwrap();
        for i in 0..6u64 {
            log.append(&[i as u8]).unwrap();
        }
    }
    let seg0 = std::fs::read_dir(&dir2)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().contains("00.seg"))
        })
        .expect("segment 0 exists");
    let seg0_bytes = std::fs::read(&seg0).unwrap();
    {
        let mut log = SegmentedLog::open(&dir2, SyncPolicy::Sync, cfg).unwrap();
        log.truncate_prefix(4).unwrap();
    }
    // Resurrect the deleted file: this is the state right after the rename.
    std::fs::File::create(&seg0)
        .unwrap()
        .write_all(&seg0_bytes)
        .unwrap();
    let log = SegmentedLog::open(&dir2, SyncPolicy::Sync, cfg).unwrap();
    assert!(!seg0.exists(), "orphan swept at open");
    assert_eq!(log.read(3).unwrap(), None, "truncation sticks");
    assert_eq!(log.read(4).unwrap().unwrap(), vec![4]);
    assert_eq!(log.len(), 6);
}

/// The simulated cluster runs on the real-disk segmented backend in virtual
/// time, with checkpoint-driven compaction: a crashed-and-recovered replica
/// replays only the post-checkpoint suffix from its own disk, heights
/// converge, and the ledger's retained prefix is bounded by the checkpoint
/// interval.
#[test]
fn sim_cluster_on_segmented_backend_compacts_after_checkpoints() {
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Sync,
        storage: StorageBackend::SegmentedTemp,
        compact_after_checkpoint: true,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .checkpoint_period(10)
        .clients(1, 4, Some(120))
        .build();
    cluster.sim().crash(3, 5 * SECOND);
    cluster.sim().recover(3, 10 * SECOND);
    cluster.run_until(60 * SECOND);
    assert_eq!(cluster.total_completed(), 480);
    let heights: Vec<u64> = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .collect();
    let tip = *heights.iter().max().unwrap();
    assert!(tip >= 20, "enough blocks to checkpoint (tip {tip})");
    for r in 0..4 {
        assert!(
            heights[r] + 1 >= tip,
            "replica {r} converged (heights {heights:?})"
        );
        let node = cluster.node::<CounterApp>(r);
        let covered = node.snapshot_covered().expect("checkpoints fired");
        let first = node.first_retained().expect("active member");
        assert!(
            first > 1,
            "replica {r}: compaction truncated the log prefix (first retained {first})"
        );
        assert!(
            first <= covered,
            "replica {r}: block {covered} (the anchor) must stay readable, first retained {first}"
        );
        // The retained chain still chains correctly onto the snapshot point.
        let chain = node.chain();
        assert!(!chain.is_empty());
        assert!(chain[0].header.number >= first);
        for pair in chain.windows(2) {
            assert_eq!(pair[1].header.hash_last_block, pair[0].header.hash());
        }
    }
}

/// Memory persistence: the engine carries the chain but nothing is durable,
/// and the virtual disk is never touched.
#[test]
fn memory_engine_keeps_chain_volatile() {
    let config = NodeConfig {
        variant: Variant::Weak,
        persistence: Persistence::Memory,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(1, 2, Some(10))
        .build();
    cluster.run_until(30 * SECOND);
    assert_eq!(cluster.total_completed(), 20);
    for r in 0..4 {
        let node = cluster.node::<CounterApp>(r);
        assert!(!node.chain().is_empty());
        let stats = node.engine_stats().expect("active member");
        assert_eq!(stats.syncs, 0, "∞-persistence never syncs");
        assert_eq!(cluster.sim().disk_syncs(r), 0);
        assert_eq!(
            cluster.sim().disk_bytes(r),
            0,
            "memory mode never touches the disk"
        );
    }
}
