//! End-to-end tests of the α > 1 pipelined ordering core on the full
//! SmartChain stack: throughput (the pipelining win under the GroupCommit
//! rung in a latency-dominated network), safety across a leader crash with
//! in-flight instances, and the strong variant's out-of-order PERSIST
//! certificates with in-order reply release.

use smartchain::core::audit::verify_chain;
use smartchain::core::block::BlockBody;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{NodeConfig, Persistence, Variant};
use smartchain::sim::hw::HwSpec;
use smartchain::sim::{MILLI, SECOND};
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;

/// Delivered blocks (minimum across replicas) in a GroupCommit-rung run on
/// a latency-dominated network — the `bench/src/micro.rs` α scenario at
/// test scale.
fn group_commit_blocks(alpha: u64, variant: Variant) -> u64 {
    let mut hw = HwSpec::paper_testbed();
    hw.nic.propagation_ns = 2_500_000; // 2.5 ms one-way: latency-bound ORDER
    let config = NodeConfig {
        variant,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 16,
            alpha,
            ..OrderingConfig::default()
        },
        progress_timeout: 800 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .hw(hw)
        .seed(11)
        .clients(4, 32, None)
        .build();
    cluster.run_until(5 * SECOND);
    (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .min()
        .unwrap_or(0)
}

/// The acceptance-criterion throughput property: with α = 4 the cluster
/// delivers strictly more batches per virtual second than with α = 1 under
/// the GroupCommit rung — and the whole α ∈ {2, 4, 8} ladder behaves like a
/// pipeline (monotone until the fsync bound saturates it).
#[test]
fn alpha4_outdelivers_alpha1_under_group_commit() {
    let a1 = group_commit_blocks(1, Variant::Weak);
    let a2 = group_commit_blocks(2, Variant::Weak);
    let a4 = group_commit_blocks(4, Variant::Weak);
    let a8 = group_commit_blocks(8, Variant::Weak);
    assert!(
        a4 > a1,
        "alpha = 4 must strictly out-deliver alpha = 1 (got {a4} vs {a1})"
    );
    // The win is the round-latency hiding, so it should be substantial —
    // not a rounding artifact — and monotone across the window sizes until
    // the disk bound takes over.
    assert!(
        a4 as f64 >= a1 as f64 * 15.0 / 10.0,
        "expected >= 1.5x, got {a4} vs {a1}"
    );
    assert!(a2 > a1, "alpha = 2 must beat alpha = 1 ({a2} vs {a1})");
    assert!(
        a4 >= a2,
        "alpha = 4 must not trail alpha = 2 ({a4} vs {a2})"
    );
    assert!(
        a8 as f64 >= a4 as f64 * 0.9,
        "alpha = 8 saturates the fsync bound, it must not collapse ({a8} vs {a4})"
    );
}

/// Strong variant at α = 4: the PERSIST certificate rounds of several open
/// blocks overlap and complete out of order, yet every replica's chain is
/// identical, audited, and carries quorum certificates.
#[test]
fn strong_variant_pipelines_persist_certificates() {
    let config = NodeConfig {
        variant: Variant::Strong,
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 4,
            alpha: 4,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(2, 4, Some(15))
        .build();
    cluster.run_until(60 * SECOND);
    assert_eq!(cluster.total_completed(), 120, "all requests complete");
    let chain0 = cluster.node::<CounterApp>(0).chain();
    assert!(!chain0.is_empty());
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    verify_chain(&genesis, &chain0).expect("audit passes");
    let quorum = 3;
    for block in &chain0 {
        if matches!(block.body, BlockBody::Transactions { .. }) {
            assert!(
                block.certificate.signatures.len() >= quorum,
                "block {} released without a PERSIST quorum certificate",
                block.header.number
            );
        }
    }
    for r in 1..4 {
        let chain = cluster.node::<CounterApp>(r).chain();
        assert_eq!(chain.len(), chain0.len(), "replica {r} height");
        for (a, b) in chain.iter().zip(chain0.iter()) {
            assert_eq!(a.header.hash(), b.header.hash(), "replica {r} diverged");
        }
    }
}

/// The acceptance-criterion safety property: a leader crash while α = 4
/// instances are in flight. The regency change must recover the in-flight
/// values, and every surviving replica must deliver the identical in-order
/// batch stream (identical audited chains).
#[test]
fn alpha4_leader_crash_preserves_identical_chains() {
    let config = NodeConfig {
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 4,
            alpha: 4,
            ..OrderingConfig::default()
        },
        progress_timeout: 200 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(5)
        .clients(2, 4, Some(12))
        .build();
    // Let the pipeline fill (a few blocks delivered), then kill the leader
    // mid-flight — with α = 4 it has several undecided instances open.
    let mut deadline = 0;
    while cluster.node::<CounterApp>(1).height().unwrap_or(0) < 3 {
        deadline += smartchain::sim::MICRO * 500;
        assert!(deadline < 60 * SECOND, "pipeline never started");
        cluster.run_until(deadline);
    }
    let now = deadline;
    cluster.sim().crash(0, now + smartchain::sim::MICRO);
    cluster.run_until(now + 90 * SECOND);
    assert_eq!(
        cluster.total_completed(),
        96,
        "all requests must complete across the leader change"
    );
    let genesis = cluster.node::<CounterApp>(1).genesis().clone();
    let chain1 = cluster.node::<CounterApp>(1).chain();
    assert!(!chain1.is_empty());
    verify_chain(&genesis, &chain1).expect("audit passes");
    for r in 2..4 {
        let chain = cluster.node::<CounterApp>(r).chain();
        assert_eq!(chain.len(), chain1.len(), "replica {r} height");
        for (a, b) in chain.iter().zip(chain1.iter()) {
            assert_eq!(a.header.hash(), b.header.hash(), "replica {r} diverged");
        }
    }
    // The regency change itself: progress after the crash requires a new
    // leader. (An individual replica may instead have caught up via state
    // transfer and kept regency 0, so assert the cluster-level property.)
    let regencies: Vec<u32> = (1..4)
        .filter_map(|r| cluster.node::<CounterApp>(r).ordering_status())
        .map(|(_, _, regency, _)| regency)
        .collect();
    assert!(
        regencies.iter().any(|&g| g >= 1),
        "somebody must have driven a regency change: {regencies:?}"
    );
    for r in 1..4 {
        if let Some((_, _, regency, leader)) = cluster.node::<CounterApp>(r).ordering_status() {
            if regency >= 1 {
                assert_ne!(leader, 0, "replica {r} still points at the dead leader");
            }
        }
    }
}

/// Checkpoints at α = 4 with a crash/recovery: the snapshot must cover
/// exactly the blocks whose execution it contains (deferred until the
/// pipeline drains), or the recovering replica re-executes blocks that are
/// already inside the snapshot and its application state diverges.
#[test]
fn alpha4_checkpoint_crash_recovery_keeps_app_state_consistent() {
    use smartchain::smr::app::Application;
    let config = NodeConfig {
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 4,
            alpha: 4,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(9)
        .checkpoint_period(4)
        .clients(2, 4, Some(20))
        .build();
    // Run until replica 2 has taken a checkpoint, then crash and recover it
    // while traffic continues.
    let mut deadline = 0;
    while cluster.node::<CounterApp>(2).checkpoint_log().is_empty() {
        deadline += 50 * MILLI;
        assert!(deadline < 60 * SECOND, "no checkpoint within horizon");
        cluster.run_until(deadline);
    }
    cluster.sim().crash(2, deadline + 10 * MILLI);
    cluster.sim().recover(2, deadline + 500 * MILLI);
    cluster.run_until(deadline + 120 * SECOND);
    assert_eq!(cluster.total_completed(), 160, "all requests complete");
    let reference = cluster.node::<CounterApp>(0).app().take_snapshot();
    for r in 1..4 {
        assert_eq!(
            cluster.node::<CounterApp>(r).app().take_snapshot(),
            reference,
            "replica {r} application state diverged (snapshot re-execution?)"
        );
    }
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    let chain0 = cluster.node::<CounterApp>(0).chain();
    verify_chain(&genesis, &chain0).expect("audit passes");
    for r in 1..4 {
        let chain = cluster.node::<CounterApp>(r).chain();
        assert_eq!(chain.len(), chain0.len(), "replica {r} height");
        for (a, b) in chain.iter().zip(chain0.iter()) {
            assert_eq!(a.header.hash(), b.header.hash(), "replica {r} diverged");
        }
    }
}
