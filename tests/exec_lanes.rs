//! Deterministic-merge regression for the parallel EXECUTE stage: for
//! identical seeds, the simulator's chains, state snapshots and replies are
//! bit-for-bit independent of the lane count — lanes change *virtual time*
//! (the stage charges the plan's critical path instead of the serial sum),
//! never *content*. The metal runtime's laned [`DurableApp`] path is
//! exercised at the end over a live [`LocalCluster`].

use smartchain::codec::{from_bytes, to_bytes};
use smartchain::coin::tx::{CoinTx, Output, TxResult};
use smartchain::coin::workload::{authorized_minters, client_key, CoinFactory};
use smartchain::coin::SmartCoinApp;
use smartchain::core::audit::verify_chain;
use smartchain::core::block::BlockBody;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{client_id, NodeConfig};
use smartchain::sim::SECOND;
use smartchain::smr::app::Application;
use smartchain::smr::ordering::OrderingConfig;
use smartchain::smr::runtime::{LocalCluster, RuntimeConfig};
use smartchain::smr::types::Request;
use std::collections::BTreeMap;

/// Replies keyed by (client, seq): comparable across runs even when block
/// boundaries differ.
type Replies = BTreeMap<(u64, u64), Vec<u8>>;

/// One single-wave run: every logical client issues exactly one MINT, all
/// fired simultaneously at start, so batch composition cannot depend on
/// execution timing — chains must be bit-identical across lane counts.
/// Returns (header hashes, node-0 snapshot, per-(client, seq) results,
/// parallel groups planned on node 0).
fn mint_wave(lanes: usize) -> (Vec<[u8; 32]>, Vec<u8>, Replies, u64) {
    run_workload(lanes, 24, 1, 1)
}

/// A longer closed-loop MINT-then-SPEND workload. Chains may differ across
/// lane counts here (reply timing feeds back into batch composition), but
/// final state and every individual reply must not.
fn mixed_workload(lanes: usize) -> (Vec<u8>, Replies) {
    let (_, snapshot, results, _) = run_workload(lanes, 8, 4, 2);
    (snapshot, results)
}

fn run_workload(
    lanes: usize,
    wallets: u32,
    requests_each: u64,
    mints: u64,
) -> (Vec<[u8; 32]>, Vec<u8>, Replies, u64) {
    let replicas = 4usize;
    let wallet_ids: Vec<u64> = (0..wallets).map(|s| client_id(replicas, s)).collect();
    let config = NodeConfig {
        execute_lanes: lanes,
        // Execution-heavy: make laned scheduling actually matter in time.
        execute_ns: 500_000,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(replicas, SmartCoinApp::from_genesis_data)
        .node_config(config)
        .seed(20_260_807)
        .app_data(authorized_minters(wallet_ids.iter().copied()))
        .clients(1, wallets, Some(requests_each))
        .client_factory(move || Box::new(CoinFactory::new(mints)))
        .build();
    cluster.run_until(90 * SECOND);
    assert_eq!(
        cluster.total_completed(),
        wallets as u64 * requests_each,
        "lanes={lanes}: workload must quiesce"
    );
    let node = cluster.node::<SmartCoinApp>(0);
    verify_chain(&node.genesis().clone(), &node.chain()).expect("audit");
    let headers: Vec<[u8; 32]> = node.chain().iter().map(|b| b.header.hash()).collect();
    // Per-request results, keyed (client, seq): comparable across runs even
    // when block boundaries differ.
    let mut results = BTreeMap::new();
    for block in node.chain() {
        if let BlockBody::Transactions {
            requests,
            results: block_results,
            ..
        } = &block.body
        {
            for (req, res) in requests.iter().zip(block_results) {
                results.insert((req.client, req.seq), res.clone());
            }
        }
    }
    // Replicas agree under laned execution too.
    let snapshot = node.app().take_snapshot();
    for r in 1..replicas {
        assert_eq!(
            cluster.node::<SmartCoinApp>(r).app().take_snapshot(),
            snapshot,
            "lanes={lanes}: replica {r} state diverged"
        );
    }
    let groups = node.exec_stats().parallel_groups;
    (headers, snapshot, results, groups)
}

/// The tentpole guarantee: chains, snapshots and replies at 2 and 8 lanes
/// are bit-identical to the serial stage's.
#[test]
fn chains_identical_across_lane_counts() {
    let (h1, s1, r1, g1) = mint_wave(1);
    assert!(!h1.is_empty());
    assert_eq!(g1, 0, "serial stage plans nothing");
    for lanes in [2usize, 8] {
        let (h, s, r, groups) = mint_wave(lanes);
        assert_eq!(h, h1, "lanes={lanes}: chain must be bit-identical");
        assert_eq!(s, s1, "lanes={lanes}: snapshot must be bit-identical");
        assert_eq!(r, r1, "lanes={lanes}: replies must be bit-identical");
        assert!(groups > 0, "lanes={lanes}: the planner must have run");
    }
}

/// Closed-loop workload with spends: state and per-request replies match
/// across lane counts even though block boundaries may not.
#[test]
fn mixed_workload_state_and_replies_lane_invariant() {
    let (s1, r1) = mixed_workload(1);
    for lanes in [2usize, 4] {
        let (s, r) = mixed_workload(lanes);
        assert_eq!(s, s1, "lanes={lanes}: final state diverged");
        assert_eq!(r, r1, "lanes={lanes}: some reply diverged");
    }
}

/// The metal runtime: a live cluster with `execute_lanes = 4` (real
/// [`ExecPool`] workers inside each replica's `DurableApp`) accepts signed
/// coin transactions and answers with quorum-matching results.
#[test]
fn local_cluster_with_exec_pool_stays_live() {
    let dir = std::env::temp_dir().join(format!("sc-exec-lanes-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wallet = 0xC11E27u64; // LocalCluster's built-in client id
    let minters = authorized_minters([wallet]);
    let config = RuntimeConfig {
        replicas: 4,
        storage_dir: Some(dir.clone()),
        execute_lanes: 4,
        ..RuntimeConfig::default()
    };
    let mut cluster =
        LocalCluster::start(config, move || SmartCoinApp::from_genesis_data(&minters))
            .expect("cluster start");
    let sk = client_key(wallet);
    for seq in 1..=8u64 {
        let tx = CoinTx::Mint {
            outputs: vec![Output {
                owner: sk.public_key(),
                value: 1,
            }],
        };
        let payload = to_bytes(&tx);
        let sig = sk.sign(&Request::sign_payload(wallet, seq, &payload));
        let request = Request {
            client: wallet,
            seq,
            payload,
            signature: Some((sk.public_key(), sig)),
        };
        let reply = cluster
            .execute_request(request, std::time::Duration::from_secs(10))
            .expect("reply quorum");
        let result: TxResult = from_bytes(&reply).expect("decodable result");
        assert!(matches!(result, TxResult::Created { .. }), "{result:?}");
    }
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
