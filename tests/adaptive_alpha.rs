//! Adaptive α (AIMD pipeline window) and per-instance repair.
//!
//! Three layers of coverage:
//!
//! 1. Harness: an adaptive cluster under bursty loss is bit-for-bit
//!    reproducible from its seed, shrinks the window when repairs fire, and
//!    regrows it to the configured maximum once the network turns clean.
//! 2. Core: a replica blinded to one instance's PROPOSE heals it through a
//!    single `InstanceFetch`/`InstanceRep` round trip — with **zero**
//!    regency changes.
//! 3. Adversary: forged repair replies (tampered value, mislabeled
//!    instance, sub-quorum or outsider-signed proof, relabeled replayed
//!    messages) are all rejected; the genuine reply still heals.

use smartchain::consensus::proof::DecisionProof;
use smartchain::consensus::View;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::NodeConfig;
use smartchain::crypto::keys::{Backend, SecretKey};
use smartchain::sim::{MILLI, SECOND};
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::{
    AlphaBounds, CoreOutput, OrderingConfig, OrderingCore, OrderingStats, SmrMsg,
};
use smartchain::smr::types::Request;

// ---------------------------------------------------------------------------
// 1. Harness: determinism + shrink-then-regrow
// ---------------------------------------------------------------------------

/// One adaptive run under front-loaded bursty loss: 8 virtual seconds of
/// alternating 1 s at 80% drops / 1 s clean, then a 4 s clean tail with
/// the remaining requests draining. Returns (completed, heights, stats).
fn adaptive_bursty_run(seed: u64) -> (u64, Vec<u64>, Vec<OrderingStats>) {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            alpha: 1,
            alpha_adaptive: Some(AlphaBounds { min: 1, max: 8 }),
            ..OrderingConfig::default()
        },
        progress_timeout: 200 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(seed)
        .clients(1, 4, Some(100))
        .build();
    let mut t = 0u64;
    while t < 8_000 {
        cluster.sim().set_drop_probability(0.8);
        t += 1_000;
        cluster.run_until(t * MILLI);
        cluster.sim().set_drop_probability(0.0);
        t += 1_000;
        cluster.run_until(t * MILLI);
    }
    cluster.run_until(12 * SECOND);
    let completed = cluster.total_completed();
    let heights: Vec<u64> = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .collect();
    let stats: Vec<OrderingStats> = (0..4)
        .map(|r| {
            cluster
                .node::<CounterApp>(r)
                .ordering_stats()
                .expect("replica has an ordering core")
        })
        .collect();
    (completed, heights, stats)
}

/// The adaptive window is a pure function of observed events: the same seed
/// reproduces completions, heights, and every adaptation counter exactly.
#[test]
fn adaptive_run_is_deterministic() {
    assert_eq!(
        adaptive_bursty_run(7),
        adaptive_bursty_run(7),
        "a seed fully determines the adaptive run, window moves and all"
    );
}

/// Under bursts the window halves (visible as repair fetches); in the clean
/// tail it regrows to the configured maximum.
#[test]
fn adaptive_window_shrinks_under_loss_and_regrows_clean() {
    let (completed, _, stats) = adaptive_bursty_run(7);
    assert!(completed > 0, "clients must make progress");
    let fetches: u64 = stats.iter().map(|s| s.fetches_sent).sum();
    let repaired: u64 = stats.iter().map(|s| s.repaired_instances).sum();
    assert!(
        fetches > 0,
        "bursts must trigger repair fetches (each halves the window)"
    );
    assert!(repaired > 0, "at least one instance must heal via repair");
    for (r, s) in stats.iter().enumerate() {
        assert_eq!(
            s.alpha_max_seen, 8,
            "replica {r}: window must regrow to the configured max in the clean tail"
        );
        assert_eq!(
            s.alpha_current, 8,
            "replica {r}: window must sit at the max after the clean tail"
        );
        assert_eq!(s.alpha_min_seen, 1, "replica {r}: window starts at min");
    }
}

// ---------------------------------------------------------------------------
// Core-level pump (sans-IO, FIFO schedule with a targeted drop rule)
// ---------------------------------------------------------------------------

fn adaptive_cores(n: usize) -> Vec<OrderingCore> {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 90; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    (0..n)
        .map(|i| {
            OrderingCore::new(
                i,
                view.clone(),
                secrets[i].clone(),
                OrderingConfig {
                    max_batch: 1,
                    alpha: 1,
                    alpha_adaptive: Some(AlphaBounds { min: 1, max: 8 }),
                    ..OrderingConfig::default()
                },
                0,
            )
        })
        .collect()
}

fn req(client: u64, seq: u64) -> Request {
    Request {
        client,
        seq,
        payload: vec![client as u8, seq as u8],
        signature: None,
    }
}

/// FIFO pump with a per-message drop rule. Returns each replica's delivered
/// request ids.
fn pump_fifo(
    cores: &mut [OrderingCore],
    submissions: Vec<(usize, Request)>,
    mut drop_rule: impl FnMut(usize, usize, &SmrMsg) -> bool,
) -> Vec<Vec<(u64, u64)>> {
    let n = cores.len();
    let mut delivered: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut queue: std::collections::VecDeque<(usize, usize, SmrMsg)> =
        std::collections::VecDeque::new();
    let handle = |from: usize,
                  out: CoreOutput,
                  queue: &mut std::collections::VecDeque<(usize, usize, SmrMsg)>,
                  delivered: &mut Vec<Vec<(u64, u64)>>| match out {
        CoreOutput::Broadcast(m) => {
            for to in 0..n {
                if to != from {
                    queue.push_back((from, to, m.clone()));
                }
            }
        }
        CoreOutput::Send(to, m) => queue.push_back((from, to, m)),
        CoreOutput::Deliver(b) => delivered[from].extend(b.requests.iter().map(Request::id)),
        CoreOutput::NeedStateTransfer { .. } => {}
    };
    for (r, request) in submissions {
        for out in cores[r].submit(request) {
            handle(r, out, &mut queue, &mut delivered);
        }
    }
    let mut step = 0usize;
    while let Some((from, to, msg)) = queue.pop_front() {
        step += 1;
        assert!(step < 100_000, "pump did not quiesce");
        if drop_rule(from, to, &msg) {
            continue;
        }
        for out in cores[to].on_message(from, msg) {
            handle(to, out, &mut queue, &mut delivered);
        }
    }
    delivered
}

// ---------------------------------------------------------------------------
// 2. Dropped PROPOSE heals via InstanceFetch — no regency change
// ---------------------------------------------------------------------------

/// Replica 3 never sees any consensus message for instance 1 (proposal,
/// writes, accepts — as if a burst ate them all). The pipelined traffic for
/// later instances keeps its quiet clock ticking; at the threshold it
/// broadcasts `InstanceFetch` and a single decided `InstanceRep` heals the
/// gap. No timer fires, so regency changes stay at exactly zero — the
/// one-round-trip alternative to a leader change.
#[test]
fn dropped_propose_heals_via_fetch_without_regency_change() {
    let mut cores = adaptive_cores(4);
    assert!(cores[0].is_leader(), "replica 0 leads regency 0");
    let submissions: Vec<(usize, Request)> = (0..6u64)
        .flat_map(|s| (0..4usize).map(move |r| (r, req(0, s))))
        .collect();
    let delivered = pump_fifo(&mut cores, submissions, |_, to, msg| {
        to == 3 && matches!(msg, SmrMsg::Consensus(m) if m.instance() == 1)
    });
    for r in 0..4 {
        assert_eq!(
            delivered[r].len(),
            6,
            "replica {r} must deliver all 6 requests"
        );
        assert_eq!(delivered[r], delivered[0], "identical order everywhere");
    }
    let healed = cores[3].stats();
    assert!(healed.fetches_sent >= 1, "the blinded replica must fetch");
    assert!(
        healed.repaired_instances >= 1,
        "instance 1 must count as repaired"
    );
    let answered: u64 = (0..3).map(|r| cores[r].stats().fetches_answered).sum();
    assert!(answered >= 1, "a peer must have answered the fetch");
    for (r, core) in cores.iter().enumerate() {
        assert_eq!(
            core.stats().regency_changes,
            0,
            "replica {r}: repair must heal the gap without any leader change"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Forged repair replies are rejected
// ---------------------------------------------------------------------------

/// Decides instance 1 at replicas 0..=2 while replica 3 stays dark, then
/// returns the cores plus the genuine (value, proof) a correct responder
/// ships in its `InstanceRep`.
fn decided_cluster_with_blind_replica() -> (
    Vec<OrderingCore>,
    smartchain::consensus::ValueBytes,
    std::sync::Arc<DecisionProof>,
) {
    let mut cores = adaptive_cores(4);
    let submissions: Vec<(usize, Request)> = (0..4usize).map(|r| (r, req(0, 0))).collect();
    let delivered = pump_fifo(&mut cores, submissions, |_, to, _| to == 3);
    assert_eq!(delivered[0].len(), 1, "replicas 0..=2 must decide");
    assert!(delivered[3].is_empty(), "replica 3 must be dark");
    // A genuine fetch against replica 0 yields the reference reply.
    let outs = cores[0].on_message(
        3,
        SmrMsg::InstanceFetch {
            instance: 1,
            have: 0,
        },
    );
    let (value, proof) = outs
        .iter()
        .find_map(|o| match o {
            CoreOutput::Send(
                3,
                SmrMsg::InstanceRep {
                    instance: 1,
                    decided: Some((v, p)),
                    ..
                },
            ) => Some((v.clone(), p.clone())),
            _ => None,
        })
        .expect("responder ships the decided value + proof");
    (cores, value, proof)
}

/// Asserts that `rep` produces no delivery and no state change at the blind
/// replica.
fn assert_rejected(core: &mut OrderingCore, from: usize, rep: SmrMsg, label: &str) {
    let outs = core.on_message(from, rep);
    assert!(
        !outs.iter().any(|o| matches!(o, CoreOutput::Deliver(_))),
        "{label}: forged reply must not deliver"
    );
    assert_eq!(core.last_delivered(), 0, "{label}: frontier must not move");
    assert_eq!(
        core.stats().repaired_instances,
        0,
        "{label}: nothing may count as repaired"
    );
}

/// Every forgery a Byzantine responder can attempt on the decided path —
/// tampered value, proof for another instance, truncated (sub-quorum)
/// proof, outsider-signed proof — is rejected; afterwards the genuine reply
/// still heals the instance.
#[test]
fn forged_instance_rep_rejected_genuine_heals() {
    let (mut cores, value, proof) = decided_cluster_with_blind_replica();

    // (a) Tampered value: hash no longer matches the proof.
    let mut tampered = value.to_vec();
    tampered.push(0xff);
    assert_rejected(
        &mut cores[3],
        0,
        SmrMsg::InstanceRep {
            instance: 1,
            decided: Some((tampered.into(), proof.clone())),
            msgs: Vec::new(),
        },
        "tampered value",
    );

    // (b) Proof re-targeted at a different instance.
    assert_rejected(
        &mut cores[3],
        0,
        SmrMsg::InstanceRep {
            instance: 2,
            decided: Some((value.clone(), proof.clone())),
            msgs: Vec::new(),
        },
        "mislabeled instance",
    );

    // (c) Sub-quorum proof (accept set truncated to one signer).
    let mut sub = (*proof).clone();
    sub.accepts.truncate(1);
    assert_rejected(
        &mut cores[3],
        0,
        SmrMsg::InstanceRep {
            instance: 1,
            decided: Some((value.clone(), sub.into())),
            msgs: Vec::new(),
        },
        "sub-quorum proof",
    );

    // (d) Outsider-signed proof: right shape, wrong keys.
    let outsider = SecretKey::from_seed(Backend::Sim, &[0xee; 32]);
    let mut forged = (*proof).clone();
    forged.accepts = forged
        .accepts
        .iter()
        .map(|(r, _)| (*r, outsider.sign(b"anything")))
        .collect();
    assert_rejected(
        &mut cores[3],
        0,
        SmrMsg::InstanceRep {
            instance: 1,
            decided: Some((value.clone(), forged.into())),
            msgs: Vec::new(),
        },
        "outsider-signed proof",
    );

    // The genuine reply heals the instance on the spot.
    let outs = cores[3].on_message(
        0,
        SmrMsg::InstanceRep {
            instance: 1,
            decided: Some((value, proof)),
            msgs: Vec::new(),
        },
    );
    assert!(
        outs.iter().any(|o| matches!(o, CoreOutput::Deliver(_))),
        "genuine reply must deliver"
    );
    assert_eq!(
        cores[3].last_delivered(),
        1,
        "frontier advances past the gap"
    );
}

/// The undecided path replays messages through the ordinary consensus
/// checks: a responder relaying *another* replica's signed WRITE/ACCEPT as
/// its own (wire sender ≠ signer) contributes nothing toward a quorum,
/// while the same messages with truthful senders rebuild the instance and
/// decide it.
#[test]
fn relabeled_replay_messages_rejected_truthful_replay_heals() {
    // Nobody decides: every ACCEPT broadcast is dropped (each replica still
    // tallies its own), and replica 3 is fully dark — instance 1 sits
    // write-quorum-locked but undecided at replicas 0..=2.
    let mut cores = adaptive_cores(4);
    let submissions: Vec<(usize, Request)> = (0..4usize).map(|r| (r, req(0, 0))).collect();
    let delivered = pump_fifo(&mut cores, submissions, |_, to, msg| {
        to == 3
            || matches!(
                msg,
                SmrMsg::Consensus(smartchain::consensus::messages::ConsensusMsg::Accept { .. })
            )
    });
    assert!(delivered.iter().all(Vec::is_empty), "nobody may decide yet");

    // Collect each responder's undecided-path repair payload.
    let replay: Vec<(usize, Vec<smartchain::consensus::messages::ConsensusMsg>)> = (0..3)
        .map(|r| {
            let outs = cores[r].on_message(
                3,
                SmrMsg::InstanceFetch {
                    instance: 1,
                    have: 0,
                },
            );
            let msgs = outs
                .iter()
                .find_map(|o| match o {
                    CoreOutput::Send(
                        3,
                        SmrMsg::InstanceRep {
                            decided: None,
                            msgs,
                            ..
                        },
                    ) => Some(msgs.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("replica {r} must answer undecided"));
            (r, msgs)
        })
        .collect();

    // A Byzantine relay: replica 2 forwards replica 1's signed messages
    // under its own wire identity. Signature checks bind payloads to the
    // wire sender, so nothing is admitted.
    assert_rejected(
        &mut cores[3],
        2,
        SmrMsg::InstanceRep {
            instance: 1,
            decided: None,
            msgs: replay[1].1.clone(),
        },
        "relabeled replay",
    );

    // Truthful replays from all three responders rebuild the instance:
    // value (Propose/ValueReply), a write quorum, and an accept quorum —
    // replica 3 decides and delivers.
    let mut delivered_any = false;
    for (r, msgs) in replay {
        let outs = cores[3].on_message(
            r,
            SmrMsg::InstanceRep {
                instance: 1,
                decided: None,
                msgs,
            },
        );
        delivered_any |= outs.iter().any(|o| matches!(o, CoreOutput::Deliver(_)));
    }
    assert!(delivered_any, "truthful replays must decide the instance");
    assert_eq!(
        cores[3].last_delivered(),
        1,
        "frontier advances past the gap"
    );
}
