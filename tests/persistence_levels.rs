//! The paper's persistence ladder (Observation 2 / §V-C), measured.
//!
//! *External durability* (the weak variant / asynchronous writes) means a
//! client can observe a completed transaction **before** that transaction is
//! durable anywhere — a full-cluster crash would silently undo a committed
//! suffix. The strong variant's PERSIST phase closes the gap: replies only
//! leave a replica after it *knows* a Byzantine quorum wrote the block.
//!
//! These tests make that ordering observable through the simulator's disk
//! accounting.

use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{NodeConfig, Persistence, Variant};
use smartchain::sim::SECOND;
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;

fn run(variant: Variant, persistence: Persistence) -> (u64, Vec<u64>) {
    let config = NodeConfig {
        variant,
        persistence,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(1, 2, Some(25))
        .build();
    cluster.run_until(30 * SECOND);
    let completed = cluster.total_completed();
    let syncs = (0..4).map(|r| cluster.sim().disk_syncs(r)).collect();
    (completed, syncs)
}

/// ∞-Persistence: everything completes, nothing ever touches the disk.
#[test]
fn memory_mode_never_syncs() {
    let (completed, syncs) = run(Variant::Weak, Persistence::Memory);
    assert_eq!(completed, 50);
    assert!(syncs.iter().all(|&s| s == 0), "{syncs:?}");
}

/// λ-Persistence: clients complete while zero synchronous writes have
/// happened — the committed suffix exists only in volatile buffers. This is
/// the anomaly: a full crash now would lose client-acknowledged history.
#[test]
fn async_mode_acknowledges_before_durability() {
    let (completed, syncs) = run(Variant::Weak, Persistence::Async);
    assert_eq!(completed, 50);
    assert!(
        syncs.iter().all(|&s| s == 0),
        "async mode must not issue synchronous writes, got {syncs:?}"
    );
}

/// 1-Persistence (weak + sync): every block is synced locally before the
/// reply goes out — each replica performed at least one flush per block it
/// produced.
#[test]
fn weak_sync_flushes_every_block() {
    let (completed, syncs) = run(Variant::Weak, Persistence::Sync);
    assert_eq!(completed, 50);
    assert!(syncs.iter().all(|&s| s > 0), "{syncs:?}");
}

/// 0-Persistence (strong): same flush discipline, plus the PERSIST round —
/// completion implies a quorum of replicas flushed. We check the stronger
/// system-wide property: at least a quorum of replicas issued flushes.
#[test]
fn strong_sync_has_quorum_durability() {
    let (completed, syncs) = run(Variant::Strong, Persistence::Sync);
    assert_eq!(completed, 50);
    let flushed = syncs.iter().filter(|&&s| s > 0).count();
    assert!(flushed >= 3, "quorum of replicas must flush, got {syncs:?}");
}

/// The full-crash thought experiment, concretely: in async mode, wiping all
/// unsynced state loses the acknowledged history; in sync mode the blocks
/// survive in every replica's log. We model the disk with `MemLog`'s
/// crash-to-last-sync semantics.
#[test]
fn full_crash_loses_async_suffix_but_not_synced_blocks() {
    use smartchain::core::block::{BlockBody, Genesis, ViewInfo};
    use smartchain::core::ledger::Ledger;
    use smartchain::core::view_keys::KeyStore;
    use smartchain::crypto::keys::{Backend, SecretKey};
    use smartchain::smr::types::Request;
    use smartchain::storage::mem::MemLog;

    let stores: Vec<KeyStore> = (0..4)
        .map(|i| {
            KeyStore::new(
                SecretKey::from_seed(Backend::Sim, &[i as u8 + 77; 32]),
                Backend::Sim,
            )
        })
        .collect();
    let genesis = Genesis {
        view: ViewInfo {
            id: 0,
            members: stores.iter().map(|s| s.certified_key_for(0)).collect(),
        },
        checkpoint_period: 100,
        app_data: Vec::new(),
    };
    let body = |i: u64| BlockBody::Transactions {
        consensus_id: i,
        requests: vec![Request {
            client: 1,
            seq: i,
            payload: vec![i as u8],
            signature: None,
        }],
        proof: smartchain::consensus::proof::DecisionProof {
            instance: i,
            epoch: 0,
            value_hash: [0u8; 32],
            accepts: Vec::new(),
        },
        results: vec![vec![0]],
    };

    // Asynchronous regime: five blocks appended, never synced.
    let mut ledger = Ledger::open(MemLog::new(), genesis.clone()).unwrap();
    for i in 1..=5u64 {
        let b = ledger.build_next(body(i), [0u8; 32]);
        ledger.append(&b).unwrap();
    }
    let mut log = ledger.into_log();
    log.crash_to_last_sync(); // the full-cluster crash
    let recovered = Ledger::open(log, genesis.clone()).unwrap();
    assert_eq!(
        recovered.height(),
        0,
        "acknowledged-but-unsynced suffix is gone after a full crash"
    );

    // Synchronous regime: sync after each block (the weak variant's local
    // flush) — the suffix survives the same crash.
    let mut ledger = Ledger::open(MemLog::new(), genesis.clone()).unwrap();
    for i in 1..=5u64 {
        let b = ledger.build_next(body(i), [0u8; 32]);
        ledger.append(&b).unwrap();
        ledger.sync().unwrap();
    }
    let mut log = ledger.into_log();
    log.crash_to_last_sync();
    let recovered = Ledger::open(log, genesis).unwrap();
    assert_eq!(recovered.height(), 5, "synced blocks survive a full crash");
}
