//! Deterministic-seed regression pins: the lossy-network scenario's
//! observable outcomes are pinned for two RNG seeds.
//!
//! The simulator promises bit-for-bit reproducibility from a seed. Pipeline
//! changes that alter virtual-time scheduling (stage reordering, different
//! charge points, new events) legitimately change these numbers — but they
//! must do so *visibly*. If this test fails and the change to event timing
//! was intended, re-pin the constants; if no timing change was intended,
//! something non-deterministic crept in.

use smartchain::core::audit::verify_chain;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::NodeConfig;
use smartchain::sim::{MILLI, SECOND};
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;

/// One lossy-network run (the `tests/lossy_network.rs` scenario, pinned):
/// 4 replicas, 5% drops, 4 clients × 30 requests, 120 virtual seconds.
/// Returns the observables: (completed, heights, delivered_messages).
fn lossy_run(seed: u64) -> (u64, Vec<u64>, u64) {
    lossy_run_alpha(seed, 1)
}

fn lossy_run_alpha(seed: u64, alpha: u64) -> (u64, Vec<u64>, u64) {
    lossy_run_lanes(seed, alpha, 1)
}

fn lossy_run_lanes(seed: u64, alpha: u64, execute_lanes: usize) -> (u64, Vec<u64>, u64) {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            alpha,
            ..OrderingConfig::default()
        },
        progress_timeout: 200 * MILLI,
        execute_lanes,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(seed)
        .clients(1, 4, Some(30))
        .build();
    cluster.sim().set_drop_probability(0.05);
    cluster.run_until(120 * SECOND);
    let completed = cluster.total_completed();
    let heights: Vec<u64> = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .collect();
    // The run must still be *correct*, not just reproducible.
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    for r in 0..4 {
        let chain = cluster.node::<CounterApp>(r).chain();
        verify_chain(&genesis, &chain).unwrap_or_else(|e| panic!("replica {r}: {e}"));
    }
    if execute_lanes > 1 {
        // The laned stage must actually have planned work (CounterApp
        // shards by client, so nothing is ever cross-lane here).
        let stats = cluster.node::<CounterApp>(0).exec_stats();
        assert!(stats.parallel_groups > 0, "laned EXECUTE never engaged");
        assert_eq!(stats.cross_lane_txs, 0, "CounterApp has no conflicts");
    }
    let delivered = cluster.sim().delivered_messages();
    (completed, heights, delivered)
}

#[test]
fn same_seed_same_outcome() {
    assert_eq!(
        lossy_run(7),
        lossy_run(7),
        "a seed fully determines the run"
    );
}

#[test]
fn seed_7_outcome_pinned() {
    let (completed, heights, delivered) = lossy_run(7);
    assert_eq!(
        (completed, heights, delivered),
        (PIN_7.0, PIN_7.1.to_vec(), PIN_7.2),
        "seed-7 outcome drifted — intended scheduling change? re-pin; otherwise find the nondeterminism"
    );
}

#[test]
fn seed_20260730_outcome_pinned() {
    let (completed, heights, delivered) = lossy_run(20_260_730);
    assert_eq!(
        (completed, heights, delivered),
        (PIN_B.0, PIN_B.1.to_vec(), PIN_B.2),
        "seed-20260730 outcome drifted — intended scheduling change? re-pin; otherwise find the nondeterminism"
    );
}

/// The same scenario with a pipelined ordering core (α = 4): seeds must
/// still fully determine the run — several consensus instances in flight,
/// out-of-order decisions, vector view changes and all.
#[test]
fn same_seed_same_outcome_alpha4() {
    assert_eq!(
        lossy_run_alpha(7, 4),
        lossy_run_alpha(7, 4),
        "a seed fully determines the pipelined run"
    );
}

#[test]
fn seed_7_outcome_pinned_alpha4() {
    let (completed, heights, delivered) = lossy_run_alpha(7, 4);
    assert_eq!(
        (completed, heights, delivered),
        (PIN_7_A4.0, PIN_7_A4.1.to_vec(), PIN_7_A4.2),
        "alpha-4 seed-7 outcome drifted — intended scheduling change? re-pin; otherwise find the nondeterminism"
    );
}

/// The same scenario with 4 execution lanes (CounterApp shards by client):
/// laned EXECUTE charges the plan's critical path, so virtual timing — and
/// these observables — legitimately differ from the serial pins, but a seed
/// must still fully determine the run.
#[test]
fn same_seed_same_outcome_lanes4() {
    assert_eq!(
        lossy_run_lanes(7, 1, 4),
        lossy_run_lanes(7, 1, 4),
        "a seed fully determines the laned run"
    );
}

#[test]
fn seed_7_outcome_pinned_lanes4() {
    let (completed, heights, delivered) = lossy_run_lanes(7, 1, 4);
    assert_eq!(
        (completed, heights, delivered),
        (PIN_7_L4.0, PIN_7_L4.1.to_vec(), PIN_7_L4.2),
        "lanes-4 seed-7 outcome drifted — intended scheduling change? re-pin; otherwise find the nondeterminism"
    );
}

/// Pinned observables: (completed requests, per-replica heights, messages
/// delivered by the kernel). Regenerate with `dump_pins` below.
const PIN_7: (u64, [u64; 4], u64) = (46, [21, 32, 32, 32], 24_134);
const PIN_B: (u64, [u64; 4], u64) = (41, [37, 37, 39, 34], 24_155);
const PIN_7_A4: (u64, [u64; 4], u64) = (49, [47, 47, 40, 40], 17_620);
/// Identical to [`PIN_7`]: this scenario is fsync- and latency-bound, so
/// the laned stage's µs-scale EXECUTE savings shift no discrete outcome —
/// exactly the "lane count changes time, never content" guarantee.
const PIN_7_L4: (u64, [u64; 4], u64) = (46, [21, 32, 32, 32], 24_134);

#[test]
#[ignore = "pin regeneration helper: cargo test -q --test seed_regression -- --ignored --nocapture"]
fn dump_pins() {
    for seed in [7u64, 20_260_730] {
        let (completed, heights, delivered) = lossy_run(seed);
        println!("seed {seed}: completed={completed} heights={heights:?} delivered={delivered}");
    }
    let (completed, heights, delivered) = lossy_run_alpha(7, 4);
    println!("seed 7 alpha 4: completed={completed} heights={heights:?} delivered={delivered}");
    let (completed, heights, delivered) = lossy_run_lanes(7, 1, 4);
    println!("seed 7 lanes 4: completed={completed} heights={heights:?} delivered={delivered}");
}
