//! Cross-crate property tests: SMaRtCoin's economic invariants hold across
//! the full replicated stack, under arbitrary interleavings of workloads,
//! and the resulting ledgers always audit.

use smartchain::coin::workload::{authorized_minters, client_key, CoinFactory};
use smartchain::coin::SmartCoinApp;
use smartchain::core::audit::verify_chain;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::{client_id, NodeConfig, SigMode, Variant};
use smartchain::sim::SECOND;
use smartchain::smr::ordering::OrderingConfig;

fn run_coin_cluster(
    seed: u64,
    wallets: u32,
    requests: u64,
    mints: u64,
    variant: Variant,
) -> (u64, u64, u64, usize) {
    let replicas = 4usize;
    let client_node = replicas;
    let wallet_ids: Vec<u64> = (0..wallets).map(|s| client_id(client_node, s)).collect();
    let minters = authorized_minters(wallet_ids.iter().copied());
    let config = NodeConfig {
        variant,
        sig_mode: SigMode::Sequential,
        ordering: OrderingConfig {
            max_batch: 16,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(replicas, SmartCoinApp::from_genesis_data)
        .node_config(config)
        .seed(seed)
        .app_data(minters)
        .clients(1, wallets, Some(requests))
        .client_factory(move || Box::new(CoinFactory::new(mints)))
        .build();
    cluster.run_until(60 * SECOND);
    let node = cluster.node::<SmartCoinApp>(0);
    let app = node.app();
    let chain = node.chain();
    verify_chain(&node.genesis().clone(), &chain).expect("audit");
    // All replicas agree on the application state.
    for r in 1..replicas {
        let other = cluster.node::<SmartCoinApp>(r).app();
        assert_eq!(other.total_value(), app.total_value(), "replica {r} value");
        assert_eq!(other.utxo_count(), app.utxo_count(), "replica {r} utxos");
    }
    (
        app.total_value(),
        app.executed(),
        app.rejected(),
        chain.len(),
    )
}

/// Conservation: total value equals successful MINTs (each mints value
/// 1), regardless of workload shape, seed, or persistence variant.
#[test]
fn prop_value_conservation() {
    // A fixed spread of seeds and workload shapes (8 cases, like the
    // original proptest configuration, but pinned).
    let cases: [(u64, u32, u64); 8] = [
        (1, 1, 1),
        (77, 2, 3),
        (123, 3, 2),
        (245, 4, 5),
        (389, 1, 4),
        (512, 2, 1),
        (700, 3, 5),
        (999, 4, 2),
    ];
    for (seed, wallets, mints) in cases {
        let requests = mints * 2; // mint phase then spend phase
        let (total, executed, rejected, blocks) =
            run_coin_cluster(seed, wallets, requests, mints, Variant::Weak);
        // Every request is a MINT of value 1 or a value-preserving SPEND.
        assert_eq!(total, wallets as u64 * mints, "seed {seed}");
        assert_eq!(executed, wallets as u64 * requests, "seed {seed}");
        assert_eq!(rejected, 0, "seed {seed}");
        assert!(blocks > 0, "seed {seed}");
    }
}

/// The same workload through the strong variant produces the same
/// application state (persistence level must not affect semantics).
#[test]
fn prop_variant_agnostic_state() {
    for seed in [3u64, 42, 617] {
        let weak = run_coin_cluster(seed, 2, 6, 3, Variant::Weak);
        let strong = run_coin_cluster(seed, 2, 6, 3, Variant::Strong);
        assert_eq!(weak.0, strong.0, "seed {seed}");
        assert_eq!(weak.1, strong.1, "seed {seed}");
    }
}

/// Double-spends injected at the client level bounce deterministically: a
/// wallet spending the same coin twice gets exactly one acceptance.
#[test]
fn double_spend_rejected_through_the_stack() {
    use smartchain::codec::to_bytes;
    use smartchain::coin::tx::{coin_id, CoinTx, Output};
    use smartchain::smr::client::RequestFactory;
    use smartchain::smr::types::Request;

    struct DoubleSpender;
    impl RequestFactory for DoubleSpender {
        fn make(&mut self, client: u64, seq: u64) -> Request {
            let sk = client_key(client);
            let tx = match seq {
                0 => CoinTx::Mint {
                    outputs: vec![Output {
                        owner: sk.public_key(),
                        value: 5,
                    }],
                },
                // seq 1 and 2 both spend the coin minted at seq 0.
                _ => CoinTx::Spend {
                    inputs: vec![coin_id(client, 0, 0)],
                    outputs: vec![Output {
                        owner: sk.public_key(),
                        value: 5,
                    }],
                },
            };
            let payload = to_bytes(&tx);
            let sig = sk.sign(&Request::sign_payload(client, seq, &payload));
            Request {
                client,
                seq,
                payload,
                signature: Some((sk.public_key(), sig)),
            }
        }
    }

    let replicas = 4usize;
    let wallet = client_id(replicas, 0);
    let minters = authorized_minters([wallet]);
    let mut cluster = ChainClusterBuilder::new(replicas, SmartCoinApp::from_genesis_data)
        .app_data(minters)
        .clients(1, 1, Some(3))
        .client_factory(|| Box::new(DoubleSpender))
        .build();
    cluster.run_until(30 * SECOND);
    let app = cluster.node::<SmartCoinApp>(0).app();
    assert_eq!(app.executed(), 2, "mint + first spend succeed");
    assert_eq!(app.rejected(), 1, "second spend of the same coin bounces");
    assert_eq!(app.total_value(), 5, "no value was created or destroyed");
}
