//! Zero-copy hot path: counting and determinism guarantees.
//!
//! 1. **Hash-once**: ordering a value costs exactly one SHA-256 of its
//!    bytes per decided instance across the *whole* cluster — the decided
//!    value travels as a shared [`ValueBytes`] handle whose digest is
//!    memoized, so PROPOSE hashing, WRITE/ACCEPT validation, proof checks,
//!    and delivery all reuse one computation.
//! 2. **Joint α×batch adaptation**: with `batch_adaptive` on, the batch cap
//!    shrinks as the AIMD window α grows (`max_batch × min_α / α`), keeping
//!    α×batch — the number of in-flight requests — near constant. The cap
//!    is a pure function of observed events, so identically-seeded runs
//!    stay bit-for-bit equal, and the engaged cap is visible as delivered
//!    batches smaller than `max_batch`.

use smartchain::consensus::View;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::NodeConfig;
use smartchain::crypto::keys::{Backend, SecretKey};
use smartchain::crypto::value::hashes_computed;
use smartchain::sim::{MILLI, SECOND};
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::{
    AlphaBounds, CoreOutput, OrderingConfig, OrderingCore, OrderingStats, SmrMsg,
};
use smartchain::smr::types::Request;
use std::sync::Mutex;

/// The digest counter is process-global, and both tests in this binary
/// order values; serialize them so one test's deliveries cannot leak into
/// the other's before/after window.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn cores(n: usize, config: &OrderingConfig) -> Vec<OrderingCore> {
    let secrets: Vec<SecretKey> = (0..n)
        .map(|i| SecretKey::from_seed(Backend::Sim, &[i as u8 + 40; 32]))
        .collect();
    let view = View {
        id: 0,
        members: secrets.iter().map(|s| s.public_key()).collect(),
    };
    (0..n)
        .map(|i| OrderingCore::new(i, view.clone(), secrets[i].clone(), *config, 0))
        .collect()
}

fn req(client: u64, seq: u64) -> Request {
    Request {
        client,
        seq,
        payload: vec![client as u8, seq as u8],
        signature: None,
    }
}

/// Loss-free FIFO pump. Returns, per replica, the sizes of the delivered
/// batches in delivery order (the request ids inside are checked equal
/// across replicas as a side assertion).
fn pump_clean(cores: &mut [OrderingCore], submissions: Vec<(usize, Request)>) -> Vec<Vec<usize>> {
    let n = cores.len();
    let mut batch_sizes: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut delivered: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut queue: std::collections::VecDeque<(usize, usize, SmrMsg)> =
        std::collections::VecDeque::new();
    let handle = |from: usize,
                  out: CoreOutput,
                  queue: &mut std::collections::VecDeque<(usize, usize, SmrMsg)>,
                  batch_sizes: &mut Vec<Vec<usize>>,
                  delivered: &mut Vec<Vec<(u64, u64)>>| match out {
        CoreOutput::Broadcast(m) => {
            for to in 0..n {
                if to != from {
                    queue.push_back((from, to, m.clone()));
                }
            }
        }
        CoreOutput::Send(to, m) => queue.push_back((from, to, m)),
        CoreOutput::Deliver(b) => {
            batch_sizes[from].push(b.requests.len());
            delivered[from].extend(b.requests.iter().map(Request::id));
        }
        CoreOutput::NeedStateTransfer { .. } => {}
    };
    for (r, request) in submissions {
        for out in cores[r].submit(request) {
            handle(r, out, &mut queue, &mut batch_sizes, &mut delivered);
        }
    }
    let mut step = 0usize;
    while let Some((from, to, msg)) = queue.pop_front() {
        step += 1;
        assert!(step < 200_000, "pump did not quiesce");
        for out in cores[to].on_message(from, msg) {
            handle(to, out, &mut queue, &mut batch_sizes, &mut delivered);
        }
    }
    for r in 1..n {
        assert_eq!(delivered[r], delivered[0], "identical order everywhere");
    }
    batch_sizes
}

/// α = 4 pipelined ordering over 4 replicas: eight one-request decisions
/// cost exactly eight digest computations cluster-wide. Every PROPOSE
/// relay, WRITE/ACCEPT hash check, decision-proof validation, and delivery
/// handle shares the one memoized digest of the decided value — nothing on
/// the ordering path hashes the same bytes twice, on any replica.
#[test]
fn ordering_hashes_each_decided_value_exactly_once() {
    let _g = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = OrderingConfig {
        max_batch: 1,
        alpha: 4,
        ..OrderingConfig::default()
    };
    let mut cores = cores(4, &config);
    assert!(cores[0].is_leader());
    let submissions: Vec<(usize, Request)> = (0..8u64)
        .flat_map(|s| (0..4usize).map(move |r| (r, req(9, s))))
        .collect();
    let before = hashes_computed();
    let batch_sizes = pump_clean(&mut cores, submissions);
    let decided = batch_sizes[0].len() as u64;
    assert_eq!(decided, 8, "eight instances must decide");
    assert_eq!(
        hashes_computed() - before,
        decided,
        "one digest per decided value across the whole 4-replica cluster"
    );
}

/// Joint adaptation engages: as the clean pipeline grows α toward its max,
/// the batch cap shrinks to `max_batch × min_α / α`, so delivered batches
/// get *smaller* while more of them are in flight. At α = 4 with
/// `max_batch = 8` no batch may exceed 2.
#[test]
fn joint_adaptation_caps_batches_as_alpha_grows() {
    let _g = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let config = OrderingConfig {
        max_batch: 8,
        alpha: 1,
        alpha_adaptive: Some(AlphaBounds { min: 1, max: 4 }),
        batch_adaptive: true,
        ..OrderingConfig::default()
    };
    let mut cores = cores(4, &config);
    // Plenty of standing load: every replica holds all 64 requests, so the
    // leader could always fill max_batch if the cap never engaged.
    let submissions: Vec<(usize, Request)> = (0..64u64)
        .flat_map(|s| (0..4usize).map(move |r| (r, req(3, s))))
        .collect();
    let batch_sizes = pump_clean(&mut cores, submissions);
    let total: usize = batch_sizes[0].iter().sum();
    assert_eq!(total, 64, "every request must be delivered exactly once");
    assert!(
        batch_sizes[0].iter().any(|&s| s < 8),
        "the shrinking cap must be visible as sub-max batches: {:?}",
        batch_sizes[0]
    );
    // Once α reaches its max of 4, the cap is 8 × 1 / 4 = 2. The window
    // only grows on clean decisions, so the tail of the run — everything
    // after the first 4-instance window at max α — obeys the tight cap.
    let alpha_max = cores[0].stats().alpha_max_seen;
    assert_eq!(alpha_max, 4, "clean run must grow the window to its max");
    let tail_violations: Vec<&usize> = batch_sizes[0]
        .iter()
        .rev()
        .take(4)
        .filter(|&&s| s > 2)
        .collect();
    assert!(
        tail_violations.is_empty(),
        "at α = 4 the cap is 2: {:?}",
        batch_sizes[0]
    );
}

/// One joint-adaptation run (α AIMD + batch cap + ranged repair all on)
/// under front-loaded bursty loss, harness-level.
fn joint_bursty_run(seed: u64) -> (u64, Vec<u64>, Vec<OrderingStats>) {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            alpha: 1,
            alpha_adaptive: Some(AlphaBounds { min: 1, max: 8 }),
            batch_adaptive: true,
            repair_range: 4,
        },
        progress_timeout: 200 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(seed)
        .clients(1, 4, Some(100))
        .build();
    let mut t = 0u64;
    while t < 8_000 {
        cluster.sim().set_drop_probability(0.8);
        t += 1_000;
        cluster.run_until(t * MILLI);
        cluster.sim().set_drop_probability(0.0);
        t += 1_000;
        cluster.run_until(t * MILLI);
    }
    cluster.run_until(12 * SECOND);
    let completed = cluster.total_completed();
    let heights: Vec<u64> = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).height().unwrap_or(0))
        .collect();
    let stats: Vec<OrderingStats> = (0..4)
        .map(|r| {
            cluster
                .node::<CounterApp>(r)
                .ordering_stats()
                .expect("replica has an ordering core")
        })
        .collect();
    (completed, heights, stats)
}

/// The joint α×batch adaptation (and the ranged repair riding with it) is a
/// pure function of observed events: identically-seeded runs reproduce
/// completions, heights, and every adaptation counter bit-for-bit.
#[test]
fn joint_adaptation_is_deterministic_under_bursty_loss() {
    let a = joint_bursty_run(13);
    let b = joint_bursty_run(13);
    assert_eq!(a, b, "a seed fully determines the joint-adaptive run");
    let (completed, _, stats) = a;
    assert!(completed > 0, "clients must make progress");
    assert!(
        stats.iter().map(|s| s.fetches_sent).sum::<u64>() > 0,
        "bursts must trigger (ranged) repair fetches"
    );
}
