//! Safety under a lossy network: with message drops, progress may slow (the
//! synchronization phase kicks in, clients retransmit) but replicas must
//! never diverge — every pair of chains is prefix-compatible and everything
//! delivered audits.

// Replica ids double as vector indices throughout.
#![allow(clippy::needless_range_loop)]

use smartchain::core::audit::verify_chain;
use smartchain::core::harness::ChainClusterBuilder;
use smartchain::core::node::NodeConfig;
use smartchain::sim::{MILLI, SECOND};
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;

#[test]
fn drops_never_cause_divergence() {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        progress_timeout: 200 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .seed(99)
        .clients(1, 4, Some(30))
        .build();
    cluster.sim().set_drop_probability(0.05);
    cluster.run_until(120 * SECOND);

    let chains: Vec<_> = (0..4)
        .map(|r| cluster.node::<CounterApp>(r).chain())
        .collect();
    let genesis = cluster.node::<CounterApp>(0).genesis().clone();
    // Someone made progress despite the drops.
    assert!(
        chains.iter().any(|c| !c.is_empty()),
        "no progress at all under 5% drops"
    );
    // Prefix compatibility: common positions hold identical blocks.
    for a in 0..4 {
        for b in (a + 1)..4 {
            let common = chains[a].len().min(chains[b].len());
            for i in 0..common {
                assert_eq!(
                    chains[a][i].header.hash(),
                    chains[b][i].header.hash(),
                    "replicas {a} and {b} diverge at block {}",
                    i + 1
                );
            }
        }
    }
    // Whatever was produced self-verifies.
    for (r, chain) in chains.iter().enumerate() {
        verify_chain(&genesis, chain).unwrap_or_else(|e| panic!("replica {r}: {e}"));
    }
}

#[test]
fn partitioned_minority_stalls_majority_continues() {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        progress_timeout: 200 * MILLI,
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .clients(1, 2, Some(40))
        .build();
    // Cut replica 3 off from everyone.
    cluster.sim().partition(3, &[0, 1, 2]);
    cluster.run_until(60 * SECOND);
    assert_eq!(cluster.total_completed(), 80, "majority keeps serving");
    let h3 = cluster.node::<CounterApp>(3).height().unwrap_or(0);
    let h0 = cluster.node::<CounterApp>(0).height().unwrap_or(0);
    assert!(
        h0 > h3,
        "isolated replica cannot keep up (h0={h0}, h3={h3})"
    );
    // Heal the partition: replica 3 must catch up via state transfer.
    for peer in [0usize, 1, 2] {
        cluster.sim().set_link(3, peer, true);
        cluster.sim().set_link(peer, 3, true);
    }
    cluster.sim().recover(3, 61 * SECOND); // nudge it to resync
    cluster.run_until(120 * SECOND);
    let h3 = cluster.node::<CounterApp>(3).height().unwrap_or(0);
    let h0 = cluster.node::<CounterApp>(0).height().unwrap_or(0);
    assert!(
        h0 - h3 <= 1,
        "replica 3 resyncs after healing (h0={h0}, h3={h3})"
    );
}
