//! Snapshot durability modeling, reconfiguration fsync gating, and dedup
//! continuity across snapshots.
//!
//! * A checkpoint snapshot's device write is tracked while in flight: a
//!   crash before completion loses the snapshot (no more conservative
//!   survive-everything behavior on the Async/Sync rungs).
//! * Under the Sync rung the snapshot write is an fsync whose completion
//!   event promotes the snapshot to durable.
//! * Under the Sync rung a reconfiguration block's synchronous write gates
//!   the view install through the same OpDone hop as transaction blocks.
//! * Checkpoint snapshots ship the ordering core's dedup frontier, so a
//!   snapshot-anchored joiner rejects retransmissions of requests inside
//!   the summarized prefix.

use smartchain::core::block::BlockBody;
use smartchain::core::harness::{ChainClusterBuilder, NodeSchedule};
use smartchain::core::node::{client_id, NodeConfig, Persistence};
use smartchain::sim::hw::HwSpec;
use smartchain::sim::{Time, MILLI, SECOND};
use smartchain::smr::app::CounterApp;
use smartchain::smr::ordering::OrderingConfig;

/// Builds a 4-replica cluster with checkpoints every 4 blocks and a modeled
/// 1 GB state (100 ms streaming write on the test-fast disk), serialization
/// cost zeroed so virtual time is dominated by the device write.
fn checkpoint_cluster(persistence: Persistence) -> smartchain::core::harness::ChainCluster {
    let config = NodeConfig {
        persistence,
        ordering: OrderingConfig {
            max_batch: 4,
            ..OrderingConfig::default()
        },
        state_size: 1_000_000_000,
        snapshot_ns_per_byte: 0,
        install_ns_per_byte: 0,
        ..NodeConfig::default()
    };
    ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .checkpoint_period(4)
        .clients(1, 2, Some(30))
        .build()
}

/// Steps the cluster until `replica`'s first checkpoint, returning the
/// virtual time at which it was observed.
fn run_until_first_checkpoint(
    cluster: &mut smartchain::core::harness::ChainCluster,
    replica: usize,
) -> Time {
    let mut deadline = 0;
    while cluster
        .node::<CounterApp>(replica)
        .checkpoint_log()
        .is_empty()
    {
        deadline += 10 * MILLI;
        assert!(deadline < 120 * SECOND, "no checkpoint within horizon");
        cluster.run_until(deadline);
    }
    deadline
}

/// Async rung: the snapshot's buffered device write is modeled at ~100 ms;
/// a crash inside that window must lose the snapshot (previously it
/// conservatively survived).
#[test]
fn async_inflight_snapshot_dies_in_crash() {
    let mut cluster = checkpoint_cluster(Persistence::Async);
    let observed = run_until_first_checkpoint(&mut cluster, 2);
    assert!(cluster.node::<CounterApp>(2).snapshot_covered().is_some());
    // Crash replica 2 right away — far inside the 100 ms write window.
    cluster.sim().crash(2, observed + MILLI);
    cluster.run_until(observed + 5 * MILLI);
    assert_eq!(
        cluster.node::<CounterApp>(2).snapshot_covered(),
        None,
        "a snapshot whose device write was in flight must not survive"
    );
}

/// Sync rung: the snapshot write is an fsync; once its completion event has
/// fired the snapshot survives a crash, while a crash before the completion
/// loses it.
#[test]
fn sync_snapshot_durable_only_after_fsync_completion() {
    // Crash before the fsync completes → gone.
    let mut cluster = checkpoint_cluster(Persistence::Sync);
    let observed = run_until_first_checkpoint(&mut cluster, 2);
    cluster.sim().crash(2, observed + MILLI);
    cluster.run_until(observed + 5 * MILLI);
    assert_eq!(
        cluster.node::<CounterApp>(2).snapshot_covered(),
        None,
        "crash before the snapshot fsync completion must lose it"
    );

    // Crash long after the fsync completed → survives.
    let mut cluster = checkpoint_cluster(Persistence::Sync);
    let observed = run_until_first_checkpoint(&mut cluster, 2);
    let covered = cluster.node::<CounterApp>(2).snapshot_covered();
    assert!(covered.is_some());
    // 1 GB at 10 GB/s is 100 ms; leave generous slack for disk queueing.
    cluster.sim().crash(2, observed + SECOND);
    cluster.run_until(observed + SECOND + 5 * MILLI);
    assert!(
        cluster.node::<CounterApp>(2).snapshot_covered().is_some(),
        "an fsync-completed snapshot must survive the crash"
    );
}

/// Sync rung: a reconfiguration block's synchronous write must gate the
/// view install — with a slow fsync there is an observable window where the
/// reconfiguration block is already in the ledger while the old view is
/// still installed, and only after the completion does the view advance.
#[test]
fn reconfig_install_gated_by_sync_write() {
    let mut hw = HwSpec::test_fast();
    hw.disk.sync_latency_ns = 50 * MILLI; // make the fsync window visible
    let config = NodeConfig {
        persistence: Persistence::Sync,
        ordering: OrderingConfig {
            max_batch: 8,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .hw(hw)
        .extra_node(NodeSchedule {
            join_at: Some(200 * MILLI),
            leave_at: None,
        })
        .clients(1, 1, Some(2))
        .build();
    let mut gating_observed = false;
    let mut deadline = 0;
    while deadline < 20 * SECOND {
        deadline += MILLI;
        cluster.run_until(deadline);
        let node = cluster.node::<CounterApp>(0);
        let has_reconfig_block = node
            .chain()
            .iter()
            .any(|b| matches!(b.body, BlockBody::Reconfiguration { .. }));
        let view_id = node.view().map(|v| v.id).unwrap_or(0);
        if has_reconfig_block && view_id == 0 {
            gating_observed = true;
        }
        if view_id >= 1 {
            break;
        }
    }
    assert!(
        gating_observed,
        "the reconfiguration block must sit in the ledger while its \
         synchronous write delays the install"
    );
    assert_eq!(
        cluster.node::<CounterApp>(0).view().map(|v| v.id),
        Some(1),
        "the view must install once the write completes"
    );
}

/// A joiner that catches up through a snapshot-anchored state transfer must
/// receive the dedup frontier with the snapshot: its duplicate filter ends
/// up identical to an always-present replica's for every client, including
/// requests that only exist inside the summarized prefix.
#[test]
fn snapshot_ships_dedup_frontier_to_joiner() {
    let config = NodeConfig {
        ordering: OrderingConfig {
            max_batch: 2,
            ..OrderingConfig::default()
        },
        ..NodeConfig::default()
    };
    let mut cluster = ChainClusterBuilder::new(4, |_| CounterApp::new())
        .node_config(config)
        .checkpoint_period(4)
        .extra_node(NodeSchedule {
            join_at: Some(20 * SECOND),
            leave_at: None,
        })
        .clients(1, 2, Some(20))
        .build();
    cluster.run_until(90 * SECOND);
    assert_eq!(cluster.total_completed(), 40);
    let joiner = cluster.node::<CounterApp>(4);
    assert!(joiner.is_active(), "joiner must have been admitted");
    assert!(
        !joiner.is_syncing(),
        "joiner must have finished catching up"
    );
    assert!(
        joiner.snapshot_covered().is_some(),
        "the transfer must have shipped a snapshot"
    );
    // The two logical clients live on client-actor node 5 (4 genesis + 1
    // extra). Their dedup frontier at the joiner must match replica 0's —
    // replica 0 saw every request delivered, the joiner saw a summarized
    // prefix plus a replayed suffix.
    let frontier0 = cluster.node::<CounterApp>(0).dedup_frontier();
    let frontier4 = joiner.dedup_frontier();
    for slot in 0..2u32 {
        let client = client_id(5, slot);
        let at0 = frontier0.iter().find(|(c, _)| *c == client);
        let at4 = frontier4.iter().find(|(c, _)| *c == client);
        assert!(at0.is_some(), "client {client} missing at replica 0");
        assert_eq!(
            at0, at4,
            "joiner's dedup frontier must cover the summarized prefix for \
             client {client}"
        );
    }
}
